"""Genuine media endpoints (Sec. III-B, Fig. 5).

A :class:`MediaEndpoint` is "any source or sink of a media stream" —
user devices, and media-processing resources such as tone generators and
conference bridges.  Unlike an application-server box, an endpoint mints
*real* descriptors (its media address plus a priority-ordered codec
list) and real selectors, and it feeds the
:class:`~repro.media.plane.MediaPlane` so that actual media flow is
observable.

The user interface of Fig. 5 appears as the methods :meth:`open`,
:meth:`accept`, :meth:`reject`, :meth:`close`, and :meth:`modify`, with
``muteIn``/``muteOut`` flags per end of each channel: "an end of a media
channel is responsible for saving and implementing the mute values
chosen at its end only."
"""

from __future__ import annotations

from typing import (Callable, Dict, FrozenSet, List, Optional, Tuple)

from ..network.address import Address
from ..network.eventloop import EventLoop
from ..protocol.channel import ChannelEnd, SignalingAgent
from ..protocol.codecs import (Codec, Medium, NO_MEDIA, best_common_codec,
                               codecs_for_medium)
from ..protocol.descriptor import Descriptor, DescriptorFactory, Selector
from ..protocol.errors import ProtocolStateError
from ..protocol.signals import (Close, CloseAck, Describe, MetaSignal, Oack,
                                Open, Select, TunnelSignal)
from ..protocol.slot import Slot
from .plane import MediaPlane

__all__ = ["Port", "MediaEndpoint"]

Hook = Callable[["Port"], None]


class Port:
    """Per-slot media state of an endpoint: one end of one media channel."""

    def __init__(self, endpoint: "MediaEndpoint", slot: Slot,
                 address: Address):
        self.endpoint = endpoint
        self.slot = slot
        self.address = address
        self.mute_in = False
        self.mute_out = False
        #: The descriptor our latest selector answered (transmission
        #: target bookkeeping).
        self.answered: Optional[Descriptor] = None
        #: True while an incoming open awaits a user decision (ringing).
        self.offer_pending = False

    # -- identity -----------------------------------------------------------
    @property
    def name(self) -> str:
        return "%s:%s" % (self.endpoint.name, self.slot.tunnel_id)

    @property
    def medium(self) -> Optional[Medium]:
        return self.slot.medium

    # -- media-plane interface ----------------------------------------------
    @property
    def listening(self) -> bool:
        """Footnote 5: an endpoint listens in accordance with a
        descriptor as soon as it has sent it."""
        desc = self.slot.local_descriptor
        return desc is not None and not desc.is_no_media

    @property
    def offered_codecs(self) -> Tuple[Codec, ...]:
        desc = self.slot.local_descriptor
        if desc is None:
            return ()
        return tuple(c for c in desc.codecs if c.is_real)

    def default_sources(self) -> FrozenSet[str]:
        return frozenset({self.endpoint.content_label(self)})

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<Port %s %s @%s>" % (self.name, self.slot.state, self.address)


class MediaEndpoint(SignalingAgent):
    """A source/sink of media implementing the Fig. 5 user interface.

    Parameters
    ----------
    auto_accept:
        Resources accept every offered channel immediately; user devices
        leave this False and "ring" (the ``on_offer`` hook fires and the
        test or application decides).
    codecs:
        Medium → priority-ordered codec tuple this endpoint can handle.
        Defaults to every built-in codec of each medium.
    """

    def __init__(self, loop: EventLoop, plane: MediaPlane, name: str,
                 cost: float = 0.0, auto_accept: bool = False,
                 codecs: Optional[Dict[Medium, Tuple[Codec, ...]]] = None,
                 host: Optional[str] = None):
        super().__init__(loop, name, cost=cost)
        self.plane = plane
        self.auto_accept = auto_accept
        self._codecs = dict(codecs or {})
        self._host = host or plane.allocator.host()
        self._factory = DescriptorFactory(origin=name)
        self._ports: Dict[Slot, Port] = {}
        # hooks
        self.on_offer: Optional[Hook] = None
        self.on_flowing: Optional[Hook] = None
        self.on_port_closed: Optional[Hook] = None
        #: Robust mode: ``(tunnel_id, reason)`` per slot whose retry
        #: budget ran out (``reason`` includes ``"busy"`` when the far
        #: box shed us), newest last.
        self.failed_ports: List[Tuple[str, str]] = []

    # ------------------------------------------------------------------
    # ports
    # ------------------------------------------------------------------
    def port(self, slot: Slot) -> Port:
        """The port for ``slot``, created (and registered) on demand."""
        port = self._ports.get(slot)
        if port is None:
            address = self.plane.allocator.allocate(self._host)
            port = Port(self, slot, address)
            self._ports[slot] = port
            self.plane.register_port(port)
        return port

    def ports(self) -> List[Port]:
        return list(self._ports.values())

    def port_for_end(self, end: ChannelEnd, tunnel_id: str = "t0") -> Port:
        return self.port(end.slot(tunnel_id))

    def supported(self, medium: Medium) -> Tuple[Codec, ...]:
        """Codecs this endpoint can handle for ``medium``, best first."""
        if medium in self._codecs:
            return self._codecs[medium]
        return codecs_for_medium(medium)

    def content_label(self, port: Port) -> str:
        """Label for the content this port emits (overridden by
        resources: a tone generator emits ``tone:busy`` etc.)."""
        return "%s:%s" % (port.medium or "media", self.name)

    # ------------------------------------------------------------------
    # Fig. 5 user interface
    # ------------------------------------------------------------------
    def open(self, slot: Slot, medium: Medium, mute_in: bool = False,
             mute_out: bool = False) -> Port:
        """User event ``!open``: request a media channel."""
        port = self.port(slot)
        port.mute_in = mute_in
        port.mute_out = mute_out
        slot.send_open(medium, self._mint(port, medium))
        return port

    def accept(self, slot: Slot, mute_in: bool = False,
               mute_out: bool = False) -> Port:
        """User event ``!accept`` on a pending offer."""
        port = self.port(slot)
        port.mute_in = mute_in
        port.mute_out = mute_out
        port.offer_pending = False
        assert slot.medium is not None
        slot.send_oack(self._mint(port, slot.medium))
        self._answer(port)
        return port

    def reject(self, slot: Slot) -> None:
        """User event ``!reject`` (protocol ``close``)."""
        port = self.port(slot)
        port.offer_pending = False
        slot.send_close()
        self._stop_sending(port)

    def close(self, slot: Slot) -> None:
        """User event ``!close``: close the channel from this end."""
        port = self.port(slot)
        port.offer_pending = False
        if slot.is_live:
            slot.send_close()
        self._stop_sending(port)

    def modify(self, slot: Slot, mute_in: Optional[bool] = None,
               mute_out: Optional[bool] = None) -> None:
        """User event ``!modify``: change mute flags dynamically.

        A ``muteIn`` change re-describes this endpoint; a ``muteOut``
        change sends a fresh selector ("a select can be sent at any
        time", Sec. VI-C).
        """
        port = self.port(slot)
        redescribe = mute_in is not None and mute_in != port.mute_in
        reselect = mute_out is not None and mute_out != port.mute_out
        if mute_in is not None:
            port.mute_in = mute_in
        if mute_out is not None:
            port.mute_out = mute_out
        if not slot.is_flowing:
            return
        if redescribe:
            assert slot.medium is not None
            slot.send_describe(self._mint(port, slot.medium))
        if reselect:
            self._answer(port)

    def refresh_descriptor(self, slot: Slot) -> None:
        """Re-describe without changing muting (footnote 4: address,
        port, or codec change while flowing)."""
        port = self.port(slot)
        if slot.is_flowing:
            assert slot.medium is not None
            slot.send_describe(self._mint(port, slot.medium))

    def move(self, slot: Slot, new_host: Optional[str] = None) -> Port:
        """Mobility (Sec. X-F): this endpoint's media attachment moves
        to a new host/address mid-channel.

        The endpoint re-describes itself on the signaling path; media
        keeps travelling directly between endpoints (no triangular
        routing), with at most a brief window of clipping while the
        peer still targets the old address.
        """
        port = self.port(slot)
        self.plane.unregister_port(port)
        host = new_host or self.plane.allocator.host()
        port.address = self.plane.allocator.allocate(host)
        self.plane.register_port(port)
        if slot.is_flowing:
            assert slot.medium is not None
            slot.send_describe(self._mint(port, slot.medium))
            # Our own outbound stream now originates from the new
            # address; re-declare it.
            self._answer(port)
        return port

    # ------------------------------------------------------------------
    # descriptor / selector minting
    # ------------------------------------------------------------------
    def _mint(self, port: Port, medium: Medium) -> Descriptor:
        if port.mute_in:
            return self._factory.no_media()
        return self._factory.descriptor(port.address, self.supported(medium))

    def _answer(self, port: Port) -> None:
        """Send a selector answering the most recent received descriptor,
        and update the media plane accordingly."""
        slot = port.slot
        descriptor = slot.remote_descriptor
        if descriptor is None or not slot.is_flowing:
            return
        codec = None
        if not port.mute_out and not descriptor.is_no_media:
            codec = best_common_codec(descriptor.codecs,
                                      self.supported(slot.medium or ""))
        if codec is None:
            selector = Selector(answers=descriptor.id, address=port.address,
                                codec=NO_MEDIA)
            slot.send_select(selector)
            port.answered = descriptor
            self._stop_sending(port)
        else:
            selector = Selector(answers=descriptor.id, address=port.address,
                                codec=codec)
            slot.send_select(selector)
            port.answered = descriptor
            assert descriptor.address is not None
            self.plane.set_transmission(port, descriptor.address, codec,
                                        self._sources_for(port))

    def _sources_for(self, port: Port):
        return port.default_sources

    def _stop_sending(self, port: Port) -> None:
        port.answered = None
        self.plane.clear_transmission(port)

    # ------------------------------------------------------------------
    # history variables for the Sec. V specification
    # ------------------------------------------------------------------
    def enabled_out(self, slot: Slot) -> bool:
        """True when this end has sent a real selector and is flowing —
        the paper's ``enabled`` history variable for the direction in
        which this endpoint transmits (Sec. VI-C)."""
        return (slot.is_flowing and slot.selector_sent is not None
                and slot.selector_sent.codec.is_real)

    # ------------------------------------------------------------------
    # protocol events
    # ------------------------------------------------------------------
    def on_tunnel_signal(self, slot: Slot, signal: TunnelSignal) -> None:
        self._handle_tunnel_signal(slot, signal, self.port(slot))

    def _handle_tunnel_signal(self, slot: Slot, signal: TunnelSignal,
                              port: Port) -> None:
        """Body of :meth:`on_tunnel_signal` with the port already
        resolved (subclasses that need the port themselves pass it in
        rather than looking it up twice)."""
        # Exact-type dispatch; the signal classes are final.
        cls = type(signal)
        if cls is Open:
            if not slot.is_opened:
                # Spurious open on a lenient channel (an uncoordinated
                # server re-opened a live tunnel): nothing sane to do.
                return
            if self.auto_accept:
                self.accept(slot, *self.default_mutes(port))
            else:
                port.offer_pending = True
                if self.on_offer is not None:
                    self.on_offer(port)
        elif cls is Oack:
            # A mute_in chosen while the open was in flight is folded in
            # now: the descriptor sent with the open no longer reflects
            # the user's intention, so re-describe first.
            if slot.local_descriptor is not None and \
                    slot.local_descriptor.is_no_media != port.mute_in:
                assert slot.medium is not None
                slot.send_describe(self._mint(port, slot.medium))
            self._answer(port)
            if self.on_flowing is not None:
                self.on_flowing(port)
        elif cls is Describe:
            # "The endpoint that receives the new descriptor must begin
            # to act according to the new descriptor ... and must respond
            # with a new selector."
            self._answer(port)
        elif cls is Select:
            pass  # reception readiness is captured by ``listening``
        elif cls is Close:
            port.offer_pending = False
            self._stop_sending(port)
            if self.on_port_closed is not None:
                self.on_port_closed(port)
        elif cls is CloseAck:
            self._stop_sending(port)

    def default_mutes(self, port: Port) -> Tuple[bool, bool]:
        """(mute_in, mute_out) used by auto-accept; resources override."""
        return (False, False)

    def on_meta(self, end: ChannelEnd, signal: MetaSignal) -> None:
        """Endpoints ignore meta-signals by default."""

    def on_slot_failed(self, slot: Slot, reason: str) -> None:
        """Robust mode: the slot's retry budget ran out (``reason`` is
        ``"open"``/``"close"``/``"busy"``) and it fell back to
        ``closed`` — the ``noMedia`` degradation.  Clean up the port so
        the media plane stops carrying a dead channel, and record the
        failure for applications and harnesses."""
        self.failed_ports.append((slot.tunnel_id, reason))
        port = self._ports.get(slot)
        if port is None:
            return
        port.offer_pending = False
        self._stop_sending(port)
        if self.on_port_closed is not None:
            self.on_port_closed(port)

    def release_end(self, end: ChannelEnd) -> None:
        """Forget the ports riding ``end``'s slots and free their plane
        addresses, without firing hooks.  The peer-teardown path does
        this automatically (:meth:`on_channel_gone`); an endpoint owner
        that tears its *own* end down must call this, or every hangup
        strands one closed :class:`Port` in the endpoint forever."""
        for slot in end.slots.values():
            self._release_slot(slot)

    def _release_slot(self, slot: Slot) -> Optional[Port]:
        port = self._ports.pop(slot, None)
        if port is not None:
            self.plane.unregister_port(port)
        return port

    def on_channel_gone(self, end: ChannelEnd) -> None:
        for slot in end.slots.values():
            port = self._release_slot(slot)
            if port is not None and self.on_port_closed is not None:
                self.on_port_closed(port)
