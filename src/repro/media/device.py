"""User devices: telephones, laptops, televisions (Sec. I).

"User devices act autonomously with respect to other media endpoints
(even if acting as slaves to their human masters).  For example, they
can request connections at any time, and choose to accept or decline
connections that are offered to them."

A :class:`UserDevice` is a :class:`~repro.media.endpoint.MediaEndpoint`
that *rings* on incoming opens (unless ``auto_accept``) and keeps a ring
log for tests and examples.
"""

from __future__ import annotations

from typing import List, Optional

from ..protocol.channel import ChannelEnd
from ..protocol.signals import Available, ChannelUp, MetaSignal, Unavailable
from ..protocol.slot import Slot
from .endpoint import MediaEndpoint, Port

__all__ = ["UserDevice"]


class UserDevice(MediaEndpoint):
    """An autonomous user device with a human-facing ringing model.

    Devices also answer availability queries: when a new signaling
    channel reaches the device, it reports ``Available`` or
    ``Unavailable`` according to its ``availability`` attribute — the
    meta-signal a Click-to-Dial box waits for in state ``twoCalls``
    (Fig. 6).
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: "available", "busy", or None (report nothing).
        self.availability: Optional[str] = "available"
        #: Ports that rang at least once (newest last).
        self.ring_log: List[Port] = []
        base_on_offer = self.on_offer

        def record_ring(port: Port) -> None:
            self.ring_log.append(port)
            if base_on_offer is not None:  # pragma: no cover - defensive
                base_on_offer(port)

        self._ring_hook = record_ring

    def on_meta(self, end: ChannelEnd, signal: MetaSignal) -> None:
        if isinstance(signal, ChannelUp) and self.availability is not None:
            if self.availability == "available":
                end.send_meta(Available())
            else:
                end.send_meta(Unavailable(reason=self.availability))

    # Keep the ring log even when a test replaces ``on_offer``.
    def on_tunnel_signal(self, slot: Slot, signal) -> None:
        port = self.port(slot)
        before = port.offer_pending
        self._handle_tunnel_signal(slot, signal, port)
        if port.offer_pending and not before:
            self.ring_log.append(port)

    # ------------------------------------------------------------------
    # convenience for tests and examples
    # ------------------------------------------------------------------
    def ringing(self) -> List[Port]:
        """Ports with an offer currently pending."""
        return [p for p in self.ports() if p.offer_pending]

    def answer(self, mute_in: bool = False, mute_out: bool = False,
               port: Optional[Port] = None) -> Port:
        """Accept the (single) pending offer."""
        if port is None:
            pending = self.ringing()
            if len(pending) != 1:
                raise RuntimeError(
                    "%s has %d pending offers; pass port= explicitly"
                    % (self.name, len(pending)))
            port = pending[0]
        return self.accept(port.slot, mute_in=mute_in, mute_out=mute_out)

    def decline(self, port: Optional[Port] = None) -> None:
        """Reject the (single) pending offer."""
        if port is None:
            pending = self.ringing()
            if len(pending) != 1:
                raise RuntimeError(
                    "%s has %d pending offers; pass port= explicitly"
                    % (self.name, len(pending)))
            port = pending[0]
        self.reject(port.slot)

    def hang_up_all(self) -> None:
        """Close every live channel end this device holds."""
        for port in self.ports():
            if port.slot.is_live:
                self.close(port.slot)
