"""Load topologies: what one worker drives, and how a "call" counts.

Two families:

* ``relay`` — the benchmark topology (device–box–device with one
  flowlink, the exact scenario of
  ``benchmarks/test_bench_throughput.py::test_call_setup_teardown_throughput``).
  The topology is built once and each call is one open/settle/close/
  settle round through it, so calls/sec here is directly comparable to
  ``benchmarks/baselines/load_seed.json``.

* the six bundled applications (``click_to_dial`` … ``features``) —
  each call runs the app's full chaos scenario on a fresh seeded
  :class:`~repro.network.network.Network` (seed = shard seed + call
  index), so shards stay independent and a ``--fault-plan`` exercises
  the retransmission machinery end to end.

Every driver feeds the same :class:`~repro.obs.metrics.MetricsRegistry`
names: counters ``calls.completed`` and ``signals.sent``, histograms
``call.setup.sim_seconds`` and ``call.setup.wall_seconds``.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, NamedTuple, Optional

from ..chaos.scenarios import SCENARIOS
from ..network.faults import FaultPlan, plan_by_name
from ..network.network import Network
from ..obs.metrics import MetricsRegistry
from ..protocol.codecs import AUDIO
from ..protocol.slot import RetransmitPolicy

__all__ = ["TOPOLOGIES", "DriveStats", "RELAY"]

#: The default topology name (the benchmark scenario).
RELAY = "relay"

#: Calls per measurement window on the relay path — matches the
#: 50-call batches behind ``benchmarks/baselines/load_seed.json``, so
#: best-window rates compare like with like against the recorded seed.
BATCH = 50


class DriveStats(NamedTuple):
    """What one driver observed, beyond the metrics registry."""

    calls_done: int
    executed: int
    signals_sent: int
    sim_time: float
    #: Calls/sec of the fastest measurement window (``None`` when the
    #: driver has no windowed measurement).
    best_window_rate: Optional[float] = None


def _resolve_plan(plan: Optional[str]) -> Optional[FaultPlan]:
    return None if plan is None else plan_by_name(plan)


def _make_net(seed: int, plan: Optional[FaultPlan]) -> Network:
    # Faulted load runs in robust mode (as `repro chaos` does): without
    # retransmission a lossy plan is a hang, not a measurement.
    retransmit = RetransmitPolicy() if plan is not None else None
    return Network(seed=seed, faults=plan, retransmit=retransmit)


def _count_signals(net: Network) -> int:
    return sum(slot.signals_sent
               for channel in net.channels
               for end in channel.ends
               for slot in end.slots.values())


def drive_relay(calls: int, seed: int, plan: Optional[str],
                metrics: MetricsRegistry) -> DriveStats:
    """The benchmark scenario: one relayed call set up and torn down
    ``calls`` times through a persistent device–box–device topology."""
    fault_plan = _resolve_plan(plan)
    net = _make_net(seed, fault_plan)
    a = net.device("A")
    b = net.device("B", auto_accept=True)
    box = net.box("srv")
    ch_a = net.channel(a, box)
    ch_b = net.channel(box, b)
    box.flow_link(ch_a.end_for(box).slot(), ch_b.end_for(box).slot())
    slot = ch_a.end_for(a).slot()
    # Bound locals: this loop IS the measurement, so the harness's own
    # overhead per call must stay in the noise.
    loop = net.loop
    settle = net.settle
    open_call, close_call = a.open, a.close
    observe_sim = metrics.histogram("call.setup.sim_seconds").observe
    observe_wall = metrics.histogram("call.setup.wall_seconds").observe
    perf_counter = time.perf_counter
    best_window = None
    in_window = 0
    window0 = perf_counter()
    for _ in range(calls):
        sim0 = loop._now
        wall0 = perf_counter()
        open_call(slot, AUDIO)
        settle()
        observe_sim(loop._now - sim0)
        observe_wall(perf_counter() - wall0)
        close_call(slot)
        settle()
        in_window += 1
        if in_window == BATCH:
            elapsed = perf_counter() - window0
            if elapsed > 0 and (best_window is None
                                or elapsed < best_window):
                best_window = elapsed
            in_window = 0
            window0 = perf_counter()
    metrics.counter("calls.completed").inc(calls)
    signals = _count_signals(net)
    metrics.counter("signals.sent").inc(signals)
    return DriveStats(calls_done=calls, executed=net.loop.executed,
                      signals_sent=signals, sim_time=net.now,
                      best_window_rate=BATCH / best_window
                      if best_window else None)


def _scenario_driver(app: str) -> Callable[..., DriveStats]:
    scenario = SCENARIOS[app]

    def drive(calls: int, seed: int, plan: Optional[str],
              metrics: MetricsRegistry) -> DriveStats:
        fault_plan = _resolve_plan(plan)
        setup_sim = metrics.histogram("call.setup.sim_seconds")
        setup_wall = metrics.histogram("call.setup.wall_seconds")
        completed = metrics.counter("calls.completed")
        executed = 0
        signals = 0
        sim_time = 0.0
        perf_counter = time.perf_counter
        for i in range(calls):
            net = _make_net(seed + i, fault_plan)
            wall0 = perf_counter()
            scenario(net)
            setup_wall.observe(perf_counter() - wall0)
            setup_sim.observe(net.now)
            completed.inc()
            executed += net.loop.executed
            signals += _count_signals(net)
            sim_time += net.now
        metrics.counter("signals.sent").inc(signals)
        return DriveStats(calls_done=calls, executed=executed,
                          signals_sent=signals, sim_time=sim_time)

    drive.__name__ = "drive_%s" % app
    return drive


#: Every load topology, by CLI name.
TOPOLOGIES: Dict[str, Callable[..., DriveStats]] = {RELAY: drive_relay}
TOPOLOGIES.update((app, _scenario_driver(app)) for app in SCENARIOS)
