"""Host-speed calibration for absolute throughput gates.

Raw calls/sec comparisons against a recorded baseline conflate two
things: how fast the code is and how fast the host happens to be while
measuring.  On shared containers the second term swings by tens of
percent minute to minute, which makes a tight absolute gate (2.5x the
recorded seed) either flaky or toothless.

The fix is a *reference workload* whose code never changes between
measurements: the pure-Python backend driving the relay topology.
``benchmarks/baselines/load_seed.json`` records the best-window rate
that exact workload achieved on the baseline host
(``python_reference_calls_per_sec_best_window``); measuring it again
on the current host, moments before the gated measurement, yields a
host-speed ratio (:func:`repro.tools.bench.host_calibration`) that
rescales the gate to baseline-host terms.

The probe runs in a child interpreter because the backend is chosen
once at import time — the calling process is usually pinned to
``REPRO_BACKEND=compiled``, and the reference must be the unchanged
pure-Python engine.
"""

from __future__ import annotations

import os
import subprocess
import sys
from typing import Optional

__all__ = ["measure_python_reference", "PROBE_CALLS", "PROBE_REPEATS"]

#: Probe sizing: mirrors the load gate's own statistic (best 50-call
#: window over a few hundred calls, best of three runs) so probe and
#: gated measurement see the same steady state.
PROBE_CALLS = 300
PROBE_REPEATS = 3

_PROBE_CODE = """\
from repro.load.harness import LoadJob, _run_job
from repro.load.topologies import RELAY

best = 0.0
for _ in range(%d):
    result = _run_job(LoadJob(app=RELAY, calls=%d, seed=0, shard=0))
    rate = result.best_window_rate
    if rate and rate > best:
        best = rate
print(best)
"""


def measure_python_reference(calls: int = PROBE_CALLS,
                             repeats: int = PROBE_REPEATS
                             ) -> Optional[float]:
    """Best-window calls/sec of the pure-Python reference workload on
    *this* host, right now.  ``None`` when the probe fails (the caller
    then skips calibration rather than gating on garbage)."""
    env = dict(os.environ)
    env["REPRO_BACKEND"] = "python"
    src = os.path.normpath(os.path.join(
        os.path.dirname(__file__), "..", ".."))
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p)
    proc = subprocess.run(
        [sys.executable, "-c", _PROBE_CODE % (repeats, calls)],
        env=env, capture_output=True, text=True)
    if proc.returncode != 0:
        return None
    try:
        rate = float(proc.stdout.strip())
    except ValueError:
        return None
    return rate if rate > 0 else None
