"""The sharded load harness: seeded scenario batches across a worker
pool.

Mirrors :mod:`repro.verification.sweep` — picklable job specs, a
``multiprocessing`` pool with a serial fallback — but drives the
*runtime* instead of the model checker: each shard runs a batch of
calls through one topology (see :mod:`repro.load.topologies`) on its
own seeded network, so shards are independent and the whole run is
deterministic in everything but wall-clock fields.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, NamedTuple, Optional, Sequence

from ..network.backend import describe as _backend_describe
from ..obs.metrics import MetricsRegistry
from ..tools.bench import exact_percentiles
from .topologies import RELAY, TOPOLOGIES

__all__ = ["LoadJob", "LoadResult", "default_jobs", "run_jobs",
           "summarize"]

#: Shard seeds are spread by a large odd stride so no two shards (or
#: two per-call scenario seeds within a shard) collide.
_SHARD_SEED_STRIDE = 100_003


class LoadJob(NamedTuple):
    """One worker's picklable share of a load run."""

    app: str
    calls: int
    seed: int
    shard: int
    #: Named fault plan (``repro chaos --list-plans``), or ``None``.
    plan: Optional[str] = None


class LoadResult(NamedTuple):
    """One shard's outcome (picklable; wall-clock fields are the only
    non-deterministic ones)."""

    app: str
    shard: int
    seed: int
    plan: Optional[str]
    calls_done: int
    executed: int
    signals_sent: int
    sim_time: float
    elapsed: float
    #: ``MetricsRegistry.snapshot()`` of the shard's counters and
    #: setup-latency histograms.
    metrics: Dict[str, Any]
    #: Calls/sec of the shard's fastest measurement window (relay
    #: topology only) — the statistic the recorded seed baseline uses.
    best_window_rate: Optional[float] = None
    #: Raw per-call setup latencies (simulated / wall seconds), so the
    #: run-level percentiles are exact merges, not snapshot estimates.
    setup_sim: List[float] = []
    setup_wall: List[float] = []
    error: Optional[str] = None

    def to_json(self) -> Dict[str, Any]:
        payload = self._asdict()
        # The raw observations stay out of reports; the histogram
        # snapshot under ``metrics`` already summarizes them.
        del payload["setup_sim"], payload["setup_wall"]
        return payload


def default_jobs(apps: Optional[Sequence[str]] = None,
                 calls: int = 1000, shards: int = 1, seed: int = 0,
                 plan: Optional[str] = None) -> List[LoadJob]:
    """Split ``calls`` per app across ``shards`` jobs.

    Every shard gets its own seed (derived from ``seed`` and the shard
    index), the first ``calls % shards`` shards absorb the remainder,
    and empty shards are never emitted.
    """
    if calls < 1:
        raise ValueError("calls must be >= 1")
    if shards < 1:
        raise ValueError("shards must be >= 1")
    names = list(TOPOLOGIES) if apps is None else list(apps)
    unknown = [a for a in names if a not in TOPOLOGIES]
    if unknown:
        raise KeyError("unknown topology %s (known: %s)"
                       % (", ".join(unknown), ", ".join(TOPOLOGIES)))
    base, remainder = divmod(calls, shards)
    jobs: List[LoadJob] = []
    for app in names:
        for shard in range(shards):
            share = base + (1 if shard < remainder else 0)
            if share == 0:
                continue
            jobs.append(LoadJob(app=app, calls=share,
                                seed=seed + shard * _SHARD_SEED_STRIDE,
                                shard=shard, plan=plan))
    return jobs


def _run_job(job: LoadJob) -> LoadResult:
    """Worker entry point: drive one shard and snapshot its metrics."""
    metrics = MetricsRegistry()
    start = time.perf_counter()
    try:
        stats = TOPOLOGIES[job.app](job.calls, job.seed, job.plan, metrics)
    except Exception as e:  # noqa: BLE001 - shard verdicts must travel
        return LoadResult(app=job.app, shard=job.shard, seed=job.seed,
                          plan=job.plan, calls_done=0, executed=0,
                          signals_sent=0, sim_time=0.0,
                          elapsed=time.perf_counter() - start,
                          metrics=metrics.snapshot(),
                          error="%s: %s" % (type(e).__name__, e))
    return LoadResult(
        app=job.app, shard=job.shard, seed=job.seed, plan=job.plan,
        calls_done=stats.calls_done, executed=stats.executed,
        signals_sent=stats.signals_sent, sim_time=stats.sim_time,
        elapsed=time.perf_counter() - start, metrics=metrics.snapshot(),
        best_window_rate=stats.best_window_rate,
        setup_sim=metrics.histogram("call.setup.sim_seconds").values,
        setup_wall=metrics.histogram("call.setup.wall_seconds").values,
        error=None)


def _dead_shard_result(job: LoadJob) -> LoadResult:
    """Tombstone for a shard whose worker process died before
    returning (killed, segfaulted, OOM-reaped).  It carries an error,
    so :func:`summarize` reports the run not-ok and the CLI exits
    nonzero — with the surviving shards' partial results intact."""
    return LoadResult(
        app=job.app, shard=job.shard, seed=job.seed, plan=job.plan,
        calls_done=0, executed=0, signals_sent=0, sim_time=0.0,
        elapsed=0.0, metrics={},
        error="shard worker died before returning a result "
              "(process killed or crashed)")


def run_jobs(jobs: Sequence[LoadJob],
             processes: Optional[int] = None) -> List[LoadResult]:
    """Run ``jobs`` across ``processes`` workers (default: one per
    core, capped at the job count).  ``processes<=1`` runs serially.

    A worker that dies mid-run (OOM kill, segfault) must not hang the
    harness: per-job futures surface ``BrokenProcessPool`` for every
    shard the dead worker took down, and those shards come back as
    error tombstones next to the completed shards' real results.
    """
    jobs = list(jobs)
    if processes is None:
        processes = min(len(jobs), os.cpu_count() or 1)
    if processes <= 1 or len(jobs) <= 1:
        return [_run_job(job) for job in jobs]
    try:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool
        ctx = multiprocessing.get_context()
        results: List[LoadResult] = []
        with ProcessPoolExecutor(max_workers=processes,
                                 mp_context=ctx) as pool:
            futures = [pool.submit(_run_job, job) for job in jobs]
            for job, future in zip(jobs, futures):
                try:
                    results.append(future.result())
                except BrokenProcessPool:
                    results.append(_dead_shard_result(job))
        return results
    except (ImportError, OSError, PermissionError, ValueError):
        # No usable worker pool on this platform: degrade gracefully.
        return [_run_job(job) for job in jobs]


def _merged_percentiles(results: Sequence[LoadResult],
                        attr: str) -> Dict[str, Optional[float]]:
    """Exact whole-run percentiles: shards carry their raw per-call
    observations, so the merge is a plain concatenation.  Tail
    percentiles (p99/p999) are exact nearest-rank values over the raw
    merge — at 20k calls the p999 is the 20 worst calls, which a
    bucketed histogram would smear."""
    values = [v for r in results for v in getattr(r, attr)]
    out: Dict[str, Optional[float]] = {"count": len(values)}
    out.update(exact_percentiles(values, (50, 95, 99, 99.9)))
    return out


def summarize(results: Sequence[LoadResult],
              wall_elapsed: float) -> Dict[str, Any]:
    """Reduce shard results to the run-level report.

    ``calls_per_sec`` divides total completed calls by the harness's
    wall clock around the whole pool, so it reflects real shard
    concurrency; ``calls_per_sec_serial`` divides by summed shard time
    (the one-worker equivalent)."""
    calls = sum(r.calls_done for r in results)
    signals = sum(r.signals_sent for r in results)
    executed = sum(r.executed for r in results)
    busy = sum(r.elapsed for r in results)
    window_rates = [r.best_window_rate for r in results
                    if r.best_window_rate]
    errors = [{"app": r.app, "shard": r.shard, "error": r.error}
              for r in results if r.error]
    per_app: Dict[str, Dict[str, Any]] = {}
    for r in results:
        app = per_app.setdefault(r.app, {
            "calls_done": 0, "executed": 0, "signals_sent": 0,
            "sim_time": 0.0, "shard_elapsed": 0.0, "shards": 0})
        app["calls_done"] += r.calls_done
        app["executed"] += r.executed
        app["signals_sent"] += r.signals_sent
        app["sim_time"] += r.sim_time
        app["shard_elapsed"] += r.elapsed
        app["shards"] += 1
    return {
        "shards": len(results),
        "calls_done": calls,
        "executed": executed,
        "signals_sent": signals,
        "wall_elapsed": wall_elapsed,
        "shard_elapsed_total": busy,
        "calls_per_sec": calls / wall_elapsed if wall_elapsed > 0 else None,
        "calls_per_sec_serial": calls / busy if busy > 0 else None,
        "calls_per_sec_best_window": max(window_rates, default=None),
        "signals_per_sec": signals / wall_elapsed
        if wall_elapsed > 0 else None,
        "setup_sim_seconds": _merged_percentiles(results, "setup_sim"),
        "setup_wall_seconds": _merged_percentiles(results, "setup_wall"),
        "per_app": per_app,
        "errors": errors,
        "backend": _backend_describe(),
        "ok": not errors,
    }
