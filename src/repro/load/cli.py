"""``python -m repro load`` — the sharded call-load harness.

Usage::

    python -m repro load                         # 1000 relay calls,
                                                 # one shard
    python -m repro load --calls 2000 --shards 4
    python -m repro load --apps relay --apps pbx --calls 200
    python -m repro load --fault-plan drop10+dup10
    python -m repro load --scaling 1,2,4 --bench-json BENCH_load.json
    python -m repro load --calls 200 --shards 2 --bench-json -
    python -m repro load --profile --profile-out load.pstats

Shards are independent seeded batches (see
:mod:`repro.load.harness`); ``--scaling`` repeats the run once per
worker count so the benchmark report shows how throughput scales.
``--profile`` runs the shards serially in-process under ``cProfile``
and prints the top cumulative entries — the map for the next hot-path
PR.

Exit status: 0 when every shard completed, 1 when any shard errored,
2 on usage errors (unknown topology, fault plan, or scaling list).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Any, Dict, List, Optional, TextIO

from ..network.backend import describe as _backend_describe
from ..network.faults import PLANS
from ..tools.bench import (emit_json, host_calibration, load_baseline,
                           speedup_vs_seed)
from .calibrate import measure_python_reference
from .harness import LoadJob, LoadResult, default_jobs, run_jobs, summarize
from .topologies import RELAY, TOPOLOGIES

__all__ = ["build_parser", "main"]

# The recorded seed baseline lives at the repo root (the package runs
# from a src/ layout), so anchor the lookup to this file, not the CWD.
_BASELINE_PATH = os.path.normpath(os.path.join(
    os.path.dirname(__file__), "..", "..", "..",
    "benchmarks", "baselines", "load_seed.json"))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro load",
        description="Drive seeded call batches through app topologies "
                    "across a worker pool and report calls/sec, "
                    "signals/sec, and setup-latency percentiles")
    parser.add_argument("--calls", type=int, default=1000, metavar="N",
                        help="total calls per app (default 1000)")
    parser.add_argument("--shards", type=int, default=1, metavar="N",
                        help="worker shards to split each app's calls "
                             "across (default 1)")
    parser.add_argument("--apps", action="append", default=None,
                        metavar="NAME",
                        help="topology to drive (repeatable; default: "
                             "%s; known: %s)"
                             % (RELAY, ", ".join(TOPOLOGIES)))
    parser.add_argument("--fault-plan", default=None, metavar="NAME",
                        help="drive the load over a lossy network "
                             "(named plan, see 'repro chaos "
                             "--list-plans'; implies robust mode)")
    parser.add_argument("--seed", type=int, default=0,
                        help="base simulation seed (default 0)")
    parser.add_argument("--repeat", type=int, default=1, metavar="N",
                        help="run each configuration N times and keep "
                             "the best (benchmark discipline: the seed "
                             "baseline is a best-of too; default 1)")
    parser.add_argument("--scaling", default=None, metavar="CSV",
                        help="comma-separated shard counts (e.g. 1,2,4) "
                             "to bench one after another; overrides "
                             "--shards")
    parser.add_argument("--bench-json", default=None, metavar="PATH",
                        help="write the benchmark report to PATH "
                             "('-' for stdout)")
    parser.add_argument("--calibrate", action="store_true",
                        help="measure the pure-Python reference "
                             "workload on this host (child "
                             "interpreter) and report speedups both "
                             "raw and normalized to the recorded "
                             "reference host (implies a few seconds "
                             "of extra measurement)")
    parser.add_argument("--profile", action="store_true",
                        help="run the shards serially in-process under "
                             "cProfile and print the top cumulative "
                             "entries")
    parser.add_argument("--profile-top", type=int, default=20,
                        metavar="N",
                        help="rows of profile output (default 20)")
    parser.add_argument("--profile-out", default=None, metavar="PATH",
                        help="dump the raw pstats data to PATH "
                             "(implies --profile)")
    return parser


def _run_once(jobs: List[LoadJob],
              processes: Optional[int] = None) -> Dict[str, Any]:
    start = time.perf_counter()
    results = run_jobs(jobs, processes=processes)
    return summarize(results, time.perf_counter() - start)


def _profiled_run(jobs: List[LoadJob], top: int,
                  profile_out: Optional[str],
                  out: TextIO) -> Dict[str, Any]:
    import cProfile
    import pstats
    from .harness import _run_job
    profile = cProfile.Profile()
    start = time.perf_counter()
    profile.enable()
    results = [_run_job(job) for job in jobs]
    profile.disable()
    summary = summarize(results, time.perf_counter() - start)
    if profile_out:
        parent = os.path.dirname(profile_out)
        if parent:
            os.makedirs(parent, exist_ok=True)
        profile.dump_stats(profile_out)
        print("pstats data -> %s" % profile_out, file=out)
    stats = pstats.Stats(profile, stream=out)
    stats.sort_stats("cumulative").print_stats(top)
    return summary


def _bench_payload(runs: Dict[int, Dict[str, Any]], apps: List[str],
                   calls: int, seed: int, plan: Optional[str],
                   calibrate: bool = False) -> Dict[str, Any]:
    baseline = load_baseline(_BASELINE_PATH)
    payload: Dict[str, Any] = {
        "baseline": "benchmarks/baselines/load_seed.json",
        "config": {"apps": apps, "calls_per_app": calls, "seed": seed,
                   "fault_plan": plan, "cpus": os.cpu_count(),
                   "backend": _backend_describe()},
        "runs": {"shards=%d" % n: runs[n] for n in sorted(runs)},
    }
    summary: Dict[str, Any] = {
        "all_ok": all(r["ok"] for r in runs.values()),
        "calls_per_sec_best": max(
            (r["calls_per_sec"] for r in runs.values()
             if r["calls_per_sec"]), default=None),
    }
    single = runs.get(1)
    if single is not None:
        summary["single_process_calls_per_sec"] = single["calls_per_sec"]
        summary["single_process_calls_per_sec_best_window"] = \
            single.get("calls_per_sec_best_window")
        # Speedup vs the recorded seed is only meaningful on the
        # baseline's own scenario (the faithful relay topology) and
        # with the baseline's own statistic (best 50-call window).
        seed_rate = baseline.get("calls_per_sec_best")
        rate = (single.get("calls_per_sec_best_window")
                or single["calls_per_sec"])
        if apps == [RELAY] and plan is None and seed_rate and rate:
            summary["speedup_vs_seed"] = speedup_vs_seed(
                1.0 / seed_rate, 1.0 / rate)
            if calibrate:
                reference = baseline.get(
                    "python_reference_calls_per_sec_best_window")
                measured = measure_python_reference()
                ratio = host_calibration(measured, reference)
                summary["python_reference_calls_per_sec_best_window"] \
                    = reference
                summary["python_measured_calls_per_sec_best_window"] \
                    = measured
                summary["host_calibration"] = ratio
                summary["speedup_vs_seed_calibrated"] = speedup_vs_seed(
                    1.0 / seed_rate, 1.0 / rate, calibration=ratio)
        scaling = {}
        if single["calls_per_sec"]:
            for n, run in runs.items():
                if n != 1 and run["calls_per_sec"]:
                    scaling["%d" % n] = (run["calls_per_sec"]
                                         / single["calls_per_sec"])
        summary["scaling_vs_single"] = scaling
    payload["summary"] = summary
    return payload


def _format_run(shards: int, run: Dict[str, Any], out: TextIO) -> None:
    sim = run["setup_sim_seconds"]
    print("%7d %8d %9.3f %11s %12s %10s %10s"
          % (shards, run["calls_done"], run["wall_elapsed"],
             "%.1f" % run["calls_per_sec"]
             if run["calls_per_sec"] else "-",
             "%.1f" % run["signals_per_sec"]
             if run["signals_per_sec"] else "-",
             "%.4f" % sim["p50"] if sim["p50"] is not None else "-",
             "%.4f" % sim["p95"] if sim["p95"] is not None else "-"),
          file=out)
    for err in run["errors"]:
        print("    shard %s/%d FAILED: %s"
              % (err["app"], err["shard"], err["error"]), file=out)


def main(argv: Optional[List[str]] = None,
         out: TextIO = sys.stdout) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    apps = args.apps if args.apps is not None else [RELAY]
    unknown = [a for a in apps if a not in TOPOLOGIES]
    if unknown:
        parser.error("unknown topology(s) %s (known: %s)"
                     % (", ".join(unknown), ", ".join(TOPOLOGIES)))
    if args.fault_plan is not None and args.fault_plan not in PLANS:
        parser.error("unknown fault plan %r (known: %s)"
                     % (args.fault_plan, ", ".join(sorted(PLANS))))
    if args.calls < 1 or args.shards < 1:
        parser.error("--calls and --shards must be >= 1")
    profile = args.profile or args.profile_out is not None
    if args.scaling is not None:
        try:
            shard_counts = sorted({int(s) for s in
                                   args.scaling.split(",") if s.strip()})
        except ValueError:
            shard_counts = []
        if not shard_counts or any(n < 1 for n in shard_counts):
            parser.error("--scaling wants a comma-separated list of "
                         "positive shard counts, e.g. 1,2,4")
    else:
        shard_counts = [args.shards]

    runs: Dict[int, Dict[str, Any]] = {}
    print("%7s %8s %9s %11s %12s %10s %10s"
          % ("shards", "calls", "wall(s)", "calls/sec", "signals/sec",
             "p50 sim", "p95 sim"), file=out)
    for shards in shard_counts:
        jobs = default_jobs(apps=apps, calls=args.calls, shards=shards,
                            seed=args.seed, plan=args.fault_plan)
        if profile:
            # One instrumented pass; best-of makes no sense under the
            # profiler's own overhead.
            runs[shards] = _profiled_run(jobs, args.profile_top,
                                         args.profile_out, out)
        else:
            attempts = [_run_once(jobs)
                        for _ in range(max(1, args.repeat))]
            best = max(attempts,
                       key=lambda r: r["calls_per_sec"] or 0.0)
            if len(attempts) > 1:
                best["repeats"] = len(attempts)
                best["calls_per_sec_runs"] = sorted(
                    (r["calls_per_sec"] for r in attempts
                     if r["calls_per_sec"]), reverse=True)
                # Best-of applies per statistic: the attempt with the
                # best sustained rate is not always the one with the
                # best 50-call window, and the window is the noise-
                # robust statistic the baselines record.
                windows = [r.get("calls_per_sec_best_window")
                           for r in attempts]
                windows = [w for w in windows if w]
                if windows:
                    best["calls_per_sec_best_window"] = max(windows)
            runs[shards] = best
        _format_run(shards, runs[shards], out)

    if args.bench_json:
        emit_json(args.bench_json,
                  _bench_payload(runs, apps, args.calls, args.seed,
                                 args.fault_plan,
                                 calibrate=args.calibrate), out=out)
    return 0 if all(r["ok"] for r in runs.values()) else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
