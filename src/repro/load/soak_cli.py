"""``python -m repro soak`` — sustained-churn soak with memory gates.

Usage::

    python -m repro soak                          # steady profile, 60s
                                                  # of simulated churn
    python -m repro soak --profile overload       # shedding engaged
    python -m repro soak --profile steady --profile overload \\
        --bench-json BENCH_soak.json
    python -m repro soak --epochs 6 --epoch-seconds 2   # CI smoke
    python -m repro soak --list-profiles

Each profile drives seeded Poisson session churn through a
multi-tenant relay around one core box (see :mod:`repro.load.soak`),
sampling RSS, per-type object counts, and scheduler lane depths every
epoch.  The memory-stability gate fails the run on growth beyond
tolerance; the safety check fails it on any unaccounted session or
undead slot.

Exit status: 0 when every profile passed its gates, 1 when any gate or
safety check failed, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Any, Dict, List, Optional, TextIO

from ..network.backend import describe as _backend_describe
from ..tools.bench import emit_json
from .soak import SOAK_PROFILES, run_soak

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro soak",
        description="Drive sustained seeded call churn (Poisson "
                    "arrivals, heavy-hitter tenants, admission control) "
                    "and gate on memory stability and safe shedding")
    parser.add_argument("--profile", action="append", default=None,
                        metavar="NAME",
                        help="soak profile to run (repeatable; default "
                             "steady; known: %s)"
                             % ", ".join(SOAK_PROFILES))
    parser.add_argument("--list-profiles", action="store_true",
                        help="list the named profiles and exit")
    parser.add_argument("--seed", type=int, default=7,
                        help="simulation seed (default 7)")
    parser.add_argument("--epochs", type=int, default=None, metavar="N",
                        help="override the profile's sampling epochs")
    parser.add_argument("--epoch-seconds", type=float, default=None,
                        metavar="S",
                        help="override the simulated seconds per epoch")
    parser.add_argument("--no-gate", action="store_true",
                        help="skip the memory-stability gate (report "
                             "only)")
    parser.add_argument("--bench-json", default=None, metavar="PATH",
                        help="write the soak report to PATH ('-' for "
                             "stdout)")
    return parser


def _list_profiles(out: TextIO) -> None:
    for name, profile in SOAK_PROFILES.items():
        sim = profile.epochs * profile.epoch_seconds
        print("%-9s %4.0fs sim, %d tenants x %d slots, %.0f/s arrivals"
              "%s — %s"
              % (name, sim, profile.tenants, profile.slots_per_tenant,
                 profile.arrival_rate,
                 ", admission caps" if profile.admission else "",
                 profile.description), file=out)


def _format_report(report: Dict[str, Any], out: TextIO) -> None:
    sessions = report["sessions"]
    gate = report["memory_gate"]
    print("%-9s %7.0fs sim  started=%d completed=%d shed=%d "
          "blocked=%d  gate=%s safety=%s"
          % (report["profile"]["name"], report["sim_time"],
             sessions["started"], sessions["completed"],
             sessions["shed_nomedia"],
             sessions["arrivals_blocked_no_slot"],
             "ok" if gate["ok"] else "FAIL",
             "ok" if not report["safety"]["violations"] else "FAIL"),
          file=out)
    for check in gate["checks"]:
        if not check["ok"]:
            print("    gate FAIL %s: baseline=%s final=%s limit=%s"
                  % (check["metric"], check["baseline"],
                     check["final"], check["limit"]), file=out)
    for violation in report["safety"]["violations"]:
        print("    safety FAIL: %s" % violation, file=out)


def main(argv: Optional[List[str]] = None,
         out: TextIO = sys.stdout) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_profiles:
        _list_profiles(out)
        return 0
    names = args.profile if args.profile else ["steady"]
    unknown = [n for n in names if n not in SOAK_PROFILES]
    if unknown:
        parser.error("unknown profile(s) %s (known: %s)"
                     % (", ".join(unknown), ", ".join(SOAK_PROFILES)))
    if args.epochs is not None and args.epochs < 1:
        parser.error("--epochs must be >= 1")
    if args.epoch_seconds is not None and args.epoch_seconds <= 0:
        parser.error("--epoch-seconds must be > 0")

    runs: Dict[str, Dict[str, Any]] = {}
    for name in names:
        profile = SOAK_PROFILES[name]
        if args.epochs is not None:
            profile = profile._replace(
                epochs=args.epochs,
                warmup_epochs=min(profile.warmup_epochs,
                                  max(0, args.epochs - 2)))
        if args.epoch_seconds is not None:
            profile = profile._replace(epoch_seconds=args.epoch_seconds)
        start = time.perf_counter()
        report = run_soak(profile, seed=args.seed,
                          gate=not args.no_gate)
        report["wall_elapsed"] = time.perf_counter() - start
        runs[name] = report
        _format_report(report, out)

    if args.bench_json:
        payload = {
            "config": {"seed": args.seed,
                       "backend": _backend_describe(),
                       "profiles": names},
            "runs": runs,
            "summary": {
                "all_ok": all(r["ok"] for r in runs.values()),
                "total_sessions": sum(
                    r["sessions"]["started"] for r in runs.values()),
                "total_shed_nomedia": sum(
                    r["sessions"]["shed_nomedia"]
                    for r in runs.values()),
                "safety_violations": sum(
                    r["safety"]["violation_count"]
                    for r in runs.values()),
            },
        }
        emit_json(args.bench_json, payload, out=out)
    return 0 if all(r["ok"] for r in runs.values()) else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
