"""The scale-out call-load engine (``python -m repro load``).

Shards independent seeded call scenarios across ``multiprocessing``
workers — the runtime counterpart of the model checker's parallel sweep
(:mod:`repro.verification.sweep`) — and reports calls/sec, signals/sec,
and setup-latency percentiles through :mod:`repro.obs.metrics`.
"""

from .harness import (LoadJob, LoadResult, default_jobs, run_jobs,
                      summarize)
from .topologies import TOPOLOGIES

__all__ = ["LoadJob", "LoadResult", "TOPOLOGIES", "default_jobs",
           "run_jobs", "summarize"]
