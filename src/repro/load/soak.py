"""The sustained-churn soak harness: hours of simulated call churn,
memory-stability gates, and overload shedding — in seconds of wall
clock.

``repro load`` measures short bursts; this module answers the
production question the ROADMAP calls the "million-channel soak": does
the runtime survive *sustained* Poisson arrival/departure churn with
flat memory, and does an overloaded box shed load gracefully (busy →
bounded retry → ``noMedia``) instead of collapsing?

One soak drives a multi-tenant relay: ``tenants`` caller devices, each
with a multi-tunnel channel into one shared ``core`` box, relayed by
flowlinks to per-tenant callee devices.  Sessions arrive as a Poisson
process (seeded, on the simulated clock), pick a tenant from a Zipf
heavy-hitter distribution, hold for an exponential time, optionally
re-describe mid-hold, and close.  The core box may run admission
control; links may run backpressure.

Per epoch the harness samples RSS, per-type object counts (after a
full ``gc.collect``), and the scheduler's lane stats; the memory gate
compares the last post-warmup epoch against the first and fails on
growth beyond tolerance.  Safety is checked at the end of the run:
every slot dead, every session accounted for (completed, shed to
``noMedia``, or abandoned), zero leftovers.

Everything observable flows through a
:class:`~repro.obs.metrics.MetricsRegistry` and into the JSON report
(``BENCH_soak.json`` via the CLI).
"""

from __future__ import annotations

import gc
from bisect import bisect_left
from dataclasses import asdict
from typing import Any, Dict, List, NamedTuple, Optional

from ..core.admission import AdmissionPolicy
from ..network.backend import describe as _backend_describe
from ..network.network import Network
from ..obs.metrics import MetricsRegistry
from ..protocol.codecs import AUDIO
from ..protocol.slot import RetransmitPolicy, Slot

__all__ = ["SoakProfile", "SOAK_PROFILES", "run_soak", "memory_gate",
           "TRACKED_TYPES"]

#: Object types whose population the per-epoch census tracks.  Chosen
#: to cover every arena/pool and per-session allocation in the runtime:
#: scheduler events, wire envelopes, protocol endpoints, media ports.
TRACKED_TYPES = ("Event", "TunnelMessage", "Slot", "Port",
                 "SignalingChannel", "_Session")

#: Soak channels retry busy refusals on a short budget so a shed call
#: degrades to ``noMedia`` within a few simulated seconds instead of
#: the default policy's half minute.
_SOAK_RETRANSMIT = RetransmitPolicy(initial=0.25, backoff=2.0,
                                    max_retries=3, stale_after=0.5)


class SoakProfile(NamedTuple):
    """One named soak configuration (see :data:`SOAK_PROFILES`)."""

    name: str
    description: str
    #: Caller/callee device pairs sharing the core box.
    tenants: int = 8
    #: Tunnels (= concurrent sessions) per tenant channel.
    slots_per_tenant: int = 4
    #: Poisson session arrival rate, sessions per simulated second.
    arrival_rate: float = 10.0
    #: Mean exponential hold time, simulated seconds.
    hold_mean: float = 0.5
    #: Probability a session re-describes itself mid-hold.
    redescribe_prob: float = 0.25
    #: Zipf skew for tenant selection (0 = uniform; >0 makes tenant 0
    #: the heavy hitter).
    zipf_s: float = 0.0
    #: Sampling epochs and their simulated length.
    epochs: int = 12
    epoch_seconds: float = 5.0
    #: Epochs excluded from the memory gate while pools/caches warm up.
    warmup_epochs: int = 2
    #: Admission policy installed on the core box (None = no limits).
    admission: Optional[AdmissionPolicy] = None
    #: Per-link in-flight high-water mark (None = unbounded).
    backpressure: Optional[int] = None


#: The named profiles the CLI exposes.  ``steady`` is the memory-gate
#: workload (no limits ever fire, backpressure configured but idle);
#: ``overload`` drives well past the admission caps so shedding and
#: ``noMedia`` degradation are exercised; ``churn`` maximizes
#: open/close turnover for arena/pool stress.
SOAK_PROFILES: Dict[str, SoakProfile] = {
    "steady": SoakProfile(
        name="steady",
        description="sustainable churn; memory-stability gate workload",
        tenants=8, slots_per_tenant=4, arrival_rate=10.0, hold_mean=0.5,
        redescribe_prob=0.25, zipf_s=0.0, backpressure=64),
    "overload": SoakProfile(
        name="overload",
        description="arrivals far above admission caps; shedding and "
                    "noMedia degradation under a heavy-hitter tenant",
        tenants=8, slots_per_tenant=8, arrival_rate=40.0, hold_mean=2.0,
        redescribe_prob=0.1, zipf_s=1.1,
        admission=AdmissionPolicy(max_concurrent=12,
                                  per_tenant_concurrent=2,
                                  setup_rate=15.0, setup_burst=10,
                                  retry_after=0.2),
        backpressure=64),
    "churn": SoakProfile(
        name="churn",
        description="maximum open/close turnover; arena and pool stress",
        tenants=16, slots_per_tenant=2, arrival_rate=80.0, hold_mean=0.1,
        redescribe_prob=0.5, zipf_s=0.5, backpressure=32),
}


class _Session:
    """One live call: which tenant, which slot, and its exit path."""

    __slots__ = ("tenant", "slot", "close_event", "redescribe_event")

    def __init__(self, tenant: int, slot: Slot):
        self.tenant = tenant
        self.slot = slot
        self.close_event = None
        self.redescribe_event = None


class _SoakDriver:
    """Owns the topology and the seeded churn process."""

    def __init__(self, profile: SoakProfile, seed: int):
        self.profile = profile
        self.net = Network(seed=seed, retransmit=_SOAK_RETRANSMIT,
                           backpressure=profile.backpressure)
        self.loop = self.net.loop
        self.core = self.net.box("core")
        if profile.admission is not None:
            self.core.set_admission(profile.admission)
        self.callers = []
        self.caller_slots: List[List[Slot]] = []
        tunnels = ["t%d" % i for i in range(profile.slots_per_tenant)]
        for t in range(profile.tenants):
            caller = self.net.device("A%d" % t)
            callee = self.net.device("B%d" % t, auto_accept=True)
            ch_in = self.net.channel(caller, self.core, tunnels=tunnels)
            ch_out = self.net.channel(self.core, callee, tunnels=tunnels)
            in_end = ch_in.end_for(self.core)
            out_end = ch_out.end_for(self.core)
            for tid in tunnels:
                self.core.flow_link(in_end.slot(tid), out_end.slot(tid))
            self.callers.append(caller)
            self.caller_slots.append(
                [ch_in.end_for(caller).slot(tid) for tid in tunnels])
        # Zipf tenant weights -> cumulative distribution for bisect.
        weights = [1.0 / ((t + 1) ** profile.zipf_s)
                   for t in range(profile.tenants)]
        total = sum(weights)
        acc = 0.0
        self._cum: List[float] = []
        for w in weights:
            acc += w / total
            self._cum.append(acc)
        self._in_use: Dict[Slot, _Session] = {}
        self._stopped = False
        self._arrival_event = None

        # session accounting
        self.started = 0
        self.completed = 0
        self.shed = 0          # degraded to noMedia after busy refusals
        self.abandoned = 0     # hold expired while still in busy backoff
        self.failed_other = 0  # gave up for a non-busy reason
        self.blocked = 0       # arrival found no free slot on the tenant
        self.redescribes = 0

    # -- the churn process -------------------------------------------------
    def start(self) -> None:
        self._schedule_arrival()

    def stop(self) -> None:
        """No further arrivals; sessions already live run to completion."""
        self._stopped = True
        if self._arrival_event is not None:
            self._arrival_event.cancel()
            self._arrival_event = None

    def _schedule_arrival(self) -> None:
        delay = self.loop.rng.expovariate(self.profile.arrival_rate)
        self._arrival_event = self.loop.schedule(delay, self._arrive)

    def _arrive(self) -> None:
        self._arrival_event = None
        if self._stopped:
            return
        self._schedule_arrival()
        rng = self.loop.rng
        tenant = bisect_left(self._cum, rng.random())
        if tenant >= self.profile.tenants:  # pragma: no cover - fp edge
            tenant = self.profile.tenants - 1
        slot = None
        for candidate in self.caller_slots[tenant]:
            if candidate.is_closed and candidate not in self._in_use:
                slot = candidate
                break
        if slot is None:
            self.blocked += 1
            return
        session = _Session(tenant, slot)
        self._in_use[slot] = session
        self.started += 1
        caller = self.callers[tenant]
        caller.open(slot, AUDIO)
        hold = rng.expovariate(1.0 / self.profile.hold_mean)
        session.close_event = self.loop.schedule(
            hold, self._end_session, session)
        if rng.random() < self.profile.redescribe_prob:
            session.redescribe_event = self.loop.schedule(
                hold * 0.5, self._redescribe, session)

    def _redescribe(self, session: _Session) -> None:
        session.redescribe_event = None
        slot = session.slot
        if self._in_use.get(slot) is session and slot.is_flowing:
            self.redescribes += 1
            self.callers[session.tenant].refresh_descriptor(slot)

    def _end_session(self, session: _Session) -> None:
        session.close_event = None
        slot = session.slot
        if self._in_use.get(slot) is not session:  # pragma: no cover
            return
        if session.redescribe_event is not None:
            session.redescribe_event.cancel()
            session.redescribe_event = None
        if slot.is_live:
            self.callers[session.tenant].close(slot)
            self.completed += 1
        elif slot.failed:
            # The busy/retry budget ran out before the hold expired:
            # the call degraded to noMedia — the graceful shed path.
            if slot.busy_refusals > 0:
                self.shed += 1
            else:
                self.failed_other += 1
        else:
            # Still in busy backoff (closed, retry timer armed) when
            # the caller lost patience: abandon, cancelling the retry.
            slot.force_close()
            self.abandoned += 1
        del self._in_use[slot]

    # -- reporting ---------------------------------------------------------
    def sessions_snapshot(self) -> Dict[str, int]:
        return {
            "started": self.started,
            "completed": self.completed,
            "shed_nomedia": self.shed,
            "abandoned_in_backoff": self.abandoned,
            "failed_other": self.failed_other,
            "arrivals_blocked_no_slot": self.blocked,
            "redescribes": self.redescribes,
            "live_now": len(self._in_use),
        }

    def backpressure_snapshot(self) -> Dict[str, int]:
        deferred_total = deferred_peak = 0
        for channel in self.net.channels:
            deferred_total += channel.link.deferred_total
            peak = channel.link.deferred_peak
            if peak > deferred_peak:
                deferred_peak = peak
        return {"deferred_total": deferred_total,
                "deferred_peak": deferred_peak}

    def safety_check(self) -> List[str]:
        """Invariants after the drain; each violation is one string."""
        violations: List[str] = []
        if self._in_use:
            violations.append("%d sessions never ended" % len(self._in_use))
        for channel in self.net.channels:
            for end in channel.ends:
                for slot in end.slots.values():
                    if not slot.is_dead:
                        violations.append(
                            "slot %s left %s" % (slot.name, slot.state))
        accounted = (self.completed + self.shed + self.abandoned
                     + self.failed_other)
        if accounted != self.started:
            violations.append(
                "session accounting mismatch: started=%d accounted=%d"
                % (self.started, accounted))
        admission = self.core.admission
        if admission is not None and self.shed > 0 \
                and admission.shed_total == 0:
            violations.append(
                "devices saw busy failures but the box shed nothing")
        return violations


# ----------------------------------------------------------------------
# sampling and the memory gate
# ----------------------------------------------------------------------
def _rss_kb() -> int:
    """Resident set size in kB from ``/proc`` (0 where unavailable —
    the object census still gates)."""
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        pass
    return 0


def _object_census() -> Dict[str, int]:
    """Count live instances of the tracked runtime types after a full
    collection, so cycles awaiting collection don't read as leaks."""
    gc.collect()
    counts = dict.fromkeys(TRACKED_TYPES, 0)
    for obj in gc.get_objects():
        name = type(obj).__name__
        if name in counts:
            counts[name] += 1
    return counts


def memory_gate(samples: List[Dict[str, Any]], warmup_epochs: int,
                obj_tol_abs: int = 64, obj_tol_rel: float = 0.10,
                rss_tol_kb: int = 8192) -> Dict[str, Any]:
    """Judge memory stability over the per-epoch ``samples``.

    The first ``warmup_epochs`` are excluded (pools, freelists, and
    interpreter caches legitimately fill early).  The last remaining
    epoch is compared against the first: each tracked object count may
    grow by at most ``obj_tol_abs + obj_tol_rel * baseline``, the
    scheduler heap by the same rule, and RSS by ``rss_tol_kb``.  Under
    steady churn a leak of one object per call blows far past these
    tolerances within a few epochs; honest steady state sits well
    inside them.
    """
    post = samples[warmup_epochs:]
    if len(post) < 2:
        return {"ok": True, "checks": [],
                "note": "not enough post-warmup epochs to gate"}
    base, final = post[0], post[-1]
    checks: List[Dict[str, Any]] = []

    def check(metric: str, baseline: float, current: float,
              limit: float) -> None:
        checks.append({"metric": metric, "baseline": baseline,
                       "final": current, "limit": limit,
                       "ok": current <= limit})

    for name in TRACKED_TYPES:
        b = base["objects"][name]
        check("objects.%s" % name, b, final["objects"][name],
              b + obj_tol_abs + b * obj_tol_rel)
    b = base["lanes"]["heap_len"]
    check("lanes.heap_len", b, final["lanes"]["heap_len"],
          b + obj_tol_abs + b * obj_tol_rel)
    if base["rss_kb"] > 0 and final["rss_kb"] > 0:
        check("rss_kb", base["rss_kb"], final["rss_kb"],
              base["rss_kb"] + rss_tol_kb)
    return {"ok": all(c["ok"] for c in checks), "checks": checks,
            "warmup_epochs": warmup_epochs,
            "epochs_compared": [base["epoch"], final["epoch"]]}


# ----------------------------------------------------------------------
# the run
# ----------------------------------------------------------------------
def run_soak(profile: SoakProfile, seed: int = 0,
             gate: bool = True) -> Dict[str, Any]:
    """Run one soak and return its JSON-ready report.

    ``report["ok"]`` is the run verdict: memory gate passed (when
    ``gate``) and zero safety violations.
    """
    driver = _SoakDriver(profile, seed)
    loop = driver.loop
    metrics = MetricsRegistry()
    driver.start()
    samples: List[Dict[str, Any]] = []
    for epoch in range(profile.epochs):
        loop.advance(profile.epoch_seconds)
        samples.append({
            "epoch": epoch,
            "sim_time": loop.now,
            "rss_kb": _rss_kb(),
            "objects": _object_census(),
            "lanes": loop.lane_stats(),
            "sessions": driver.sessions_snapshot(),
        })
    # Drain: no further arrivals; let held sessions close, busy-backoff
    # retries resolve, and the wire empty out completely.
    driver.stop()
    loop.run_until_quiescent(max_events=10_000_000)

    sessions = driver.sessions_snapshot()
    for name, value in sessions.items():
        metrics.counter("soak.sessions.%s" % name).inc(value)
    admission = driver.core.admission
    admission_report: Optional[Dict[str, int]] = None
    if admission is not None:
        admission_report = admission.counters()
        for name, value in admission_report.items():
            metrics.counter("soak.admission.%s" % name).inc(value)
    backpressure = driver.backpressure_snapshot()
    for name, value in backpressure.items():
        metrics.counter("soak.backpressure.%s" % name).inc(value)
    violations = driver.safety_check()
    gate_report = (memory_gate(samples, profile.warmup_epochs)
                   if gate else {"ok": True, "checks": [],
                                 "note": "gate disabled"})
    ok = gate_report["ok"] and not violations
    return {
        "profile": {
            "name": profile.name,
            "tenants": profile.tenants,
            "slots_per_tenant": profile.slots_per_tenant,
            "arrival_rate": profile.arrival_rate,
            "hold_mean": profile.hold_mean,
            "redescribe_prob": profile.redescribe_prob,
            "zipf_s": profile.zipf_s,
            "epochs": profile.epochs,
            "epoch_seconds": profile.epoch_seconds,
            "admission": (None if profile.admission is None
                          else asdict(profile.admission)),
            "backpressure": profile.backpressure,
        },
        "seed": seed,
        "sim_time": loop.now,
        "executed": loop.executed,
        "epochs": samples,
        "sessions": sessions,
        "admission": admission_report,
        "backpressure": backpressure,
        "memory_gate": gate_report,
        "safety": {"violations": violations,
                   "violation_count": len(violations)},
        "metrics": metrics.snapshot(),
        "backend": _backend_describe(),
        "ok": ok,
    }
