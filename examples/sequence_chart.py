#!/usr/bin/env python3
"""Regenerate Fig. 13 as a message-sequence chart.

The scenario: starting from Snapshot 3 of Fig. 3, the PBX and the
prepaid-card server change their flowlinks concurrently.  The tracer
captures every signal crossing the three channels of the path
A -- PBX -- PC -- C and renders the chart, which can be compared line
by line with the paper's Fig. 13.

Run:  python examples/sequence_chart.py
"""

from repro import AUDIO, FixedLatency, Network
from repro.network.latency import PAPER_C, PAPER_N
from repro.tools import SignalTracer


def main() -> None:
    net = Network(seed=0, latency=FixedLatency(PAPER_N), cost=PAPER_C)
    a = net.device("A")
    b = net.device("B", auto_accept=True)
    c = net.device("C")
    v = net.device("V", auto_accept=True)
    pbx = net.box("PBX")
    pc = net.box("PC")
    ch_a = net.channel(a, pbx)
    ch_b = net.channel(pbx, b)
    ch_mid = net.channel(pc, pbx)
    ch_c = net.channel(c, pc)
    ch_v = net.channel(pc, v)

    sa = ch_a.end_for(pbx).slot()
    sb = ch_b.end_for(pbx).slot()
    mid_pbx = ch_mid.end_for(pbx).slot()
    mid_pc = ch_mid.end_for(pc).slot()
    sc = ch_c.end_for(pc).slot()
    sv = ch_v.end_for(pc).slot()

    # Snapshot 3: A talks to B, C talks to V, middle tunnel held-muted.
    pbx.flow_link(sa, sb)
    pbx.hold_slot(mid_pbx)
    pc.flow_link(sc, sv)
    pc.open_slot(mid_pc, AUDIO)
    a.open(ch_a.end_for(a).slot(), AUDIO)
    c.open(ch_c.end_for(c).slot(), AUDIO)
    net.settle()
    pc.hold_slot(mid_pc)
    net.settle()

    # Trace only the signaling path of Fig. 13: A -- PBX -- PC -- C.
    tracer = SignalTracer(net, channels=[ch_a, ch_mid, ch_c])

    def pbx_relink():
        pbx.hold_slot(sb)
        pbx.flow_link(sa, mid_pbx)

    def pc_relink():
        pc.hold_slot(sv)
        pc.flow_link(sc, mid_pc)

    start = net.now
    pbx.node.enqueue(pbx_relink)
    pc.node.enqueue(pc_relink)
    net.settle()

    print("Fig. 13 regenerated (times relative to the concurrent "
          "relink, n=34 ms, c=20 ms):\n")
    # Shift times to the relink instant for readability.
    for m in tracer.messages:
        m.sent_at -= start
    print(tracer.render(order=["A", "PBX", "PC", "C"], width=20))
    print("\nsignal counts:", dict(sorted(tracer.summary().items())))
    print("two-way media A<->C:", net.plane.two_way(a, c))


if __name__ == "__main__":
    main()
