#!/usr/bin/env python3
"""The paper's motivating example: the prepaid-card scenario, run twice.

First with the uncoordinated servers of Fig. 2 — watch V lose its audio
input and A get hijacked — then with the compositional primitives of
Fig. 3, where every snapshot's media flow is exactly right.

Run:  python examples/prepaid_card.py
"""

from repro import Network
from repro.apps.prepaid import ErroneousPrepaidScenario, PrepaidScenario


def media_report(net, parties) -> str:
    rows = []
    for name, endpoint in parties.items():
        heard = ",".join(sorted(net.plane.heard_by(endpoint))) or "-"
        rows.append("    %s hears: %s" % (name, heard))
    wasted = net.plane.wasted_transmissions()
    if wasted:
        rows.append("    WASTED: %s" % ", ".join(
            "%s -> %s" % (tx.port.name, tx.target) for tx in wasted))
    return "\n".join(rows)


def run_erroneous() -> None:
    print("=" * 64)
    print("Fig. 2 — uncoordinated servers (naive signal forwarding)")
    print("=" * 64)
    net = Network(seed=2)
    s = ErroneousPrepaidScenario(net)
    parties = {"A": s.a, "B": s.b, "C": s.c, "V": s.v}
    s.establish_ab_call()
    print("pre-history (A talking to B):")
    print(media_report(net, parties))
    for label, step in [("snapshot 1 (A switches to C)", s.snapshot1),
                        ("snapshot 2 (funds exhausted)", s.snapshot2),
                        ("snapshot 3 (A back to B)", s.snapshot3),
                        ("snapshot 4 (payment verified)", s.snapshot4)]:
        step()
        print(label + ":")
        print(media_report(net, parties))
    print()
    print("ANOMALY: after snapshot 3, V prompts C but hears nothing "
          "(one-way media):",
          net.plane.flow_exists(s.v, s.c)
          and not net.plane.flow_exists(s.c, s.v) or "see snapshot 3")
    print("ANOMALY: after snapshot 4, A hears B and C mixed together, "
          "and the PBX still believes A is on the B call (active=%r)."
          % s.pbx.active)


def run_correct() -> None:
    print()
    print("=" * 64)
    print("Fig. 3 — compositional control (flowlinks + holdslots)")
    print("=" * 64)
    net = Network(seed=3)
    s = PrepaidScenario(net, talk_seconds=30.0, verify_delay=2.0)
    parties = {"A": s.a, "B": s.b, "C": s.c, "V": s.v}
    s.establish_ab_call()
    print("pre-history (A talking to B):")
    print(media_report(net, parties))
    steps = [
        ("snapshot 1 (A switches to C)", s.card_call_starts),
        ("snapshot 2 (funds exhausted)", s.run_until_funds_exhausted),
        ("snapshot 3 (A back to B; C--V undisturbed)", s.switch_back_to_b),
        ("snapshot 4 (paid; A stays with B — proximity confers "
         "priority)", s.run_until_paid),
        ("A consents: switches to the card call", s.switch_to_card_call),
    ]
    for label, step in steps:
        step()
        print(label + ":")
        print(media_report(net, parties))


def main() -> None:
    run_erroneous()
    run_correct()


if __name__ == "__main__":
    main()
