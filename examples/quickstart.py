#!/usr/bin/env python3
"""Quickstart: a call between two telephones through one application
server, controlled with the paper's four primitives.

Run:  python examples/quickstart.py
"""

from repro import AUDIO, Network
from repro.semantics import both_flowing, trace_path


def main() -> None:
    # One simulated deployment: event loop + media plane + router.
    net = Network(seed=1)

    # Two telephones and one application server.
    alice = net.device("alice")
    bob = net.device("bob")
    server = net.box("server")

    # Signaling channels (two-way, FIFO, reliable).  Media will flow
    # directly between the phones; only signaling crosses the server.
    ch_a = net.channel(alice, server)
    ch_b = net.channel(server, bob)

    # The server's program: one flowlink joining its two slots.
    server.flow_link(ch_a.end_for(server).slot(),
                     ch_b.end_for(server).slot())

    # Alice opens an audio channel; the flowlink relays it to Bob.
    alice.open(ch_a.end_for(alice).slot(), AUDIO)
    net.settle()

    print("bob is ringing:", bool(bob.ringing()))
    bob.answer()
    net.settle()

    # The signaling path through the server satisfies the paper's
    # bothFlowing condition, and media flows both ways.
    path = trace_path(ch_a.end_for(server).slot())
    print("signaling path:", path.describe())
    print("bothFlowing:", both_flowing(path))
    print("two-way media:", net.plane.two_way(alice, bob))
    print("alice hears:", sorted(net.plane.heard_by(alice)))

    # Alice mutes her microphone, then hangs up.
    alice.modify(ch_a.end_for(alice).slot(), mute_out=True)
    net.settle()
    print("after mute, bob hears:", sorted(net.plane.heard_by(bob)))

    alice.close(ch_a.end_for(alice).slot())
    net.settle()
    print("after hangup, both silent:",
          net.plane.silent(alice) and net.plane.silent(bob))


if __name__ == "__main__":
    main()
