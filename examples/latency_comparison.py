#!/usr/bin/env python3
"""The Sec. VIII-C / IX-B performance story, regenerated:

* our protocol's Fig. 13 scenario (2n + 3c = 128 ms),
* the path-length law p*n + (p+1)*c,
* SIP third-party call control, common case and glare (Fig. 14).

Run:  python examples/latency_comparison.py
"""

import statistics

from repro.analysis import (measure_fig13, measure_path_sweep,
                            measure_sip_common, measure_sip_glare)


def main() -> None:
    print("paper constants: c = 20 ms, n = 34 ms")
    print()
    print(measure_fig13())
    print()
    for m in measure_path_sweep([1, 2, 3, 4, 6, 8]):
        print(m)
    print()
    print(measure_sip_common())
    glares = [measure_sip_glare(seed=s) for s in range(8)]
    mean = statistics.mean(g.measured for g in glares) * 1000.0
    print("fig14 (SIP, glare)           measured %8.1f ms   formula "
          "%8.1f ms   (mean of 8 seeds)"
          % (mean, glares[0].predicted_ms))
    ours = measure_fig13().measured_ms
    common = measure_sip_common().measured_ms
    print()
    print("comparison: ours %.0f ms | SIP common %.0f ms (x%.1f) | "
          "SIP glare %.0f ms (x%.1f)"
          % (ours, common, common / ours, mean, mean / ours))
    print("paper:      ours 128 ms | SIP common 378 ms (x3.0) | "
          "SIP glare 3560 ms (x27.8)")


if __name__ == "__main__":
    main()
