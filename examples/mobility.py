#!/usr/bin/env python3
"""Sec. X-F applied: mobility over compositional media control.

"In the cases where signaling and data streams are separable ... unique
locating routers could be interspersed on signaling paths with servers
for other applications.  Triangular routing of data packets would be
avoided by signaling/data separation, and data packets could travel
between endpoints by the most direct routes."

Here a mobile handset moves to a new network *mid-call*, twice, while a
prepaid-style server sits on the signaling path.  The handset simply
re-describes itself; the far end re-targets directly — no media ever
relays through the servers.

Run:  python examples/mobility.py
"""

from repro import AUDIO, Network
from repro.semantics import both_flowing, trace_path


def main() -> None:
    net = Network(seed=10)
    mobile = net.device("mobile")
    desk = net.device("desk", auto_accept=True)
    locator = net.box("locating-router")   # a box on the signaling path
    other = net.box("feature-server")      # composed with another app

    ch_m = net.channel(mobile, locator)
    ch_mid = net.channel(locator, other)
    ch_d = net.channel(other, desk)
    locator.flow_link(ch_m.end_for(locator).slot(),
                      ch_mid.end_for(locator).slot())
    other.flow_link(ch_mid.end_for(other).slot(),
                    ch_d.end_for(other).slot())

    m_slot = ch_m.end_for(mobile).slot()
    mobile.open(m_slot, AUDIO)
    net.settle()
    print("call up, two-way media:", net.plane.two_way(mobile, desk))
    print("mobile's media address:", mobile.port(m_slot).address)

    for hop in range(1, 3):
        mobile.move(m_slot)              # handover to a new network
        wasted = net.plane.wasted_transmissions()
        print("\nhandover %d: mobile now at %s"
              % (hop, mobile.port(m_slot).address))
        print("  during handover, peer transmits into the void:",
              bool(wasted))
        net.settle()
        path = trace_path(ch_m.end_for(locator).slot())
        print("  after signaling converges: bothFlowing=%s, "
              "two-way media=%s, wasted=%d"
              % (both_flowing(path), net.plane.two_way(mobile, desk),
                 len(net.plane.wasted_transmissions())))
        tx = [t for t in net.plane.transmissions()
              if t.port.endpoint is desk][0]
        print("  desk now sends directly to:", tx.target,
              "(no triangular routing)")


if __name__ == "__main__":
    main()
