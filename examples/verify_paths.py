#!/usr/bin/env python3
"""Run the Sec. VIII-A verification: twelve signaling-path models,
safety plus temporal specification, and the flowlink blow-up factors.

Run:  python examples/verify_paths.py [--rich]
"""

import sys

from repro.verification import blowup_table, format_results, verify_all


def main() -> None:
    rich = "--rich" in sys.argv
    if rich:
        print("rich configuration (bigger nondeterminism budgets)...")
        results = verify_all(phase1_budget=2, modify_budget=2,
                             queue_capacity=8, max_versions=4,
                             max_states=5_000_000)
    else:
        results = verify_all()
    print(format_results(results))
    print()
    print("flowlink blow-up (paper: x300 memory, x1000 time on average):")
    for key, factors in sorted(blowup_table(results).items()):
        print("    %-4s states x%-6.1f memory x%-6.1f time x%.1f" % (
            key, factors["states_factor"], factors["memory_factor"],
            factors["time_factor"]))
    ok = sum(r.ok for r in results)
    print()
    print("%d/12 models pass safety + specification" % ok)


if __name__ == "__main__":
    main()
