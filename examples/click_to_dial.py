#!/usr/bin/env python3
"""Click-to-Dial (Fig. 6): ringback, busy tone, and a connected call.

Run:  python examples/click_to_dial.py
"""

from repro import Network
from repro.apps.click_to_dial import build_click_to_dial


def happy_path() -> None:
    print("-- happy path ------------------------------------------")
    net = Network(seed=6)
    user1 = net.device("user1")
    user2 = net.device("user2")
    ctd = build_click_to_dial(net, caller_address="user1")

    program = ctd.click("user2")       # user 1 clicks the web link
    net.run(0.1)
    print("program state:", program.state_name)
    print("user1 ringing:", bool(user1.ringing()))
    user1.answer()
    net.run(0.1)
    print("program state:", program.state_name,
          "| user1 hears:", sorted(net.plane.heard_by(user1)))
    user2.answer()
    net.run(0.1)
    print("program state:", program.state_name)
    print("two-way media:", net.plane.two_way(user1, user2))


def busy_path() -> None:
    print("-- callee busy -----------------------------------------")
    net = Network(seed=7)
    user1 = net.device("user1")
    user2 = net.device("user2")
    user2.availability = "busy"
    ctd = build_click_to_dial(net, caller_address="user1")

    program = ctd.click("user2")
    net.run(0.1)
    user1.answer()
    net.run(0.1)
    print("program state:", program.state_name,
          "| user1 hears:", sorted(net.plane.heard_by(user1)))
    # user 1 gives up: destroying channel 1 terminates the program.
    user1.channel_ends[0].tear_down()
    net.run(0.1)
    print("program finished:", program.finished)


def main() -> None:
    happy_path()
    busy_path()


if __name__ == "__main__":
    main()
