#!/usr/bin/env python3
"""The conference of Fig. 7 with the three partial-muting policies of
Sec. IV-B (business, emergency, training) plus full muting.

Run:  python examples/conference.py
"""

from repro import Network
from repro.apps.conference import build_conference


def report(net, devices) -> None:
    for name, dev in sorted(devices.items()):
        print("    %s hears: %s" % (
            name, ", ".join(sorted(net.plane.heard_by(dev))) or "-"))


def main() -> None:
    net = Network(seed=71)
    server = build_conference(net)
    devices = {}
    for name in ("A", "B", "C"):
        devices[name] = net.device(name, auto_accept=True)
        server.invite(name, key=name)
    net.settle()

    print("three-way conference (full mix):")
    report(net, devices)

    print("\nbusiness muting — C's noisy line muted:")
    server.business_mute("C")
    net.settle()
    report(net, devices)
    server.business_mute("C", muted=False)

    print("\nemergency services — caller B cannot hear the responders:")
    server.emergency_isolate("B")
    net.settle()
    report(net, devices)
    for other in ("A", "C"):
        server._send_mix(other, "B", "normal")

    print("\ntraining — agent A, customer B, supervisor C whispers:")
    server.training_mode(agent="A", customer="B", supervisor="C")
    net.settle()
    report(net, devices)

    print("\nfull muting — B replaced flowlink with two holdslots:")
    server.fully_mute("B")
    net.settle()
    report(net, devices)
    server.unmute("B")
    net.settle()
    print("after unmute, B hears:",
          ", ".join(sorted(net.plane.heard_by(devices["B"]))))


if __name__ == "__main__":
    main()
