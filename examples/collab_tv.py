#!/usr/bin/env python3
"""Collaborative television (Fig. 8): five tunnels, one shared time
pointer, and the leave-and-fast-forward scenario.

Run:  python examples/collab_tv.py
"""

from repro import Network
from repro.apps.collab_tv import CollaborativeTV


def main() -> None:
    net = Network(seed=81)
    session = CollaborativeTV(net, title="heidi")
    session.start_watching()

    print("family room TV receives:",
          sorted(net.plane.heard_by(session.tv)))
    print("laptop (daughter) receives:",
          sorted(net.plane.heard_by(session.laptop)))
    print("French friend's headphones receive:",
          sorted(net.plane.heard_by(session.phones)))
    video_codecs = {
        tx.port.slot.tunnel_id: tx.codec.name
        for tx in net.plane.transmissions()
        if tx.port.endpoint is session.movie
        and "video" in tx.port.slot.tunnel_id}
    print("per-device video codecs:", video_codecs)

    net.run(5.0)
    shared = session.shared_session()
    print("\nafter 5 s, shared position: %.1f s (playing=%s)"
          % (shared.position_at(net.now), shared.playing))
    session.box_a.pause()
    net.run(10.0)
    print("paused for 10 s, position still: %.1f s"
          % shared.position_at(net.now))
    session.box_a.play()

    print("\nthe daughter leaves and fast-forwards to 6000 s...")
    session.leave_and_fast_forward(position=6000.0)
    for s in session.movie.sessions():
        print("    session %-14s position %7.1f s"
              % (s.channel_name, s.position_at(net.now)))
    print("laptop still receives:",
          sorted(net.plane.heard_by(session.laptop)))
    print("chain channel between the collaboration boxes alive:",
          session.chain_ch.active)


if __name__ == "__main__":
    main()
