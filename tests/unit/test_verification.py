"""Unit tests for the model checker: kernel, properties, and the twelve
path models (small bounds, so the sweep stays fast in CI)."""

import pytest

from repro.verification import (EndpointProcess, ExplosionError, PATH_TYPES,
                                QueueDef, SystemModel, all_models,
                                blowup_table, build_model,
                                check_recurrence, check_safety,
                                check_stability, explore, find_cycle_with,
                                verify_all, verify_model)
from repro.verification.kernel import ProcessModel


# ----------------------------------------------------------------------
# kernel basics on a toy model
# ----------------------------------------------------------------------
class PingPong(ProcessModel):
    """Sends 'ping' then waits for 'pong', k times."""

    def __init__(self, out, rounds):
        self.out = out
        self.rounds = rounds
        self.name = "pingpong"

    def initial(self):
        return ("idle", self.rounds)

    def receive(self, local, qi, msg):
        mode, k = local
        return [(("idle", k), [])]

    def internal_actions(self, local):
        mode, k = local
        if k > 0:
            return [((mode, k - 1), [(self.out, ("ping",))])]
        return []


class Sink(ProcessModel):
    name = "sink"

    def initial(self):
        return ("sink",)

    def receive(self, local, qi, msg):
        return [(local, [])]


def test_kernel_explores_toy_model():
    model = SystemModel("toy", [PingPong(0, 2), Sink()],
                        [QueueDef("q", receiver=1, capacity=1)])
    graph = explore(model)
    # (2,[]), (1,[ping]), (1,[]), (0,[ping]), (0,[]) — five states
    assert graph.state_count == 5
    assert graph.terminal_ids()


def test_bounded_queue_blocks_sends():
    model = SystemModel("toy", [PingPong(0, 5), Sink()],
                        [QueueDef("q", receiver=1, capacity=1)])
    graph = explore(model)
    for state in graph.states:
        assert len(state.queues[0]) <= 1


def test_explosion_bound():
    model = build_model("OO", True)
    with pytest.raises(ExplosionError):
        explore(model.system, max_states=50)


def test_truncation_marks_graph():
    model = build_model("OO", True)
    graph = explore(model.system, max_states=50, on_truncate="mark")
    assert graph.truncated


# ----------------------------------------------------------------------
# cycle query on hand-built graphs
# ----------------------------------------------------------------------
class FakeGraph:
    def __init__(self, states, successors):
        self.states = states
        self.successors = successors
        self.state_count = len(states)


def test_find_cycle_simple_loop():
    # 0 -> 1 -> 2 -> 1 (cycle {1,2}), state values are labels
    g = FakeGraph(["a", "b", "c"], [[1], [2], [1]])
    hit = find_cycle_with(g, within=lambda s: True,
                          witness=lambda s: s == "c")
    assert hit == 2
    assert find_cycle_with(g, within=lambda s: True,
                           witness=lambda s: s == "a") is None


def test_terminal_counts_as_stutter_cycle():
    g = FakeGraph(["a", "end"], [[1], []])
    hit = find_cycle_with(g, within=lambda s: True,
                          witness=lambda s: s == "end")
    assert hit == 1


def test_cycle_must_lie_within_subgraph():
    # cycle {1,2}; restrict to states != "b" -> no cycle remains
    g = FakeGraph(["a", "b", "c"], [[1], [2], [1]])
    assert find_cycle_with(g, within=lambda s: s != "b",
                           witness=lambda s: True) is None


def test_self_loop_detected():
    g = FakeGraph(["a"], [[0]])
    assert find_cycle_with(g, within=lambda s: True,
                           witness=lambda s: True) == 0


# ----------------------------------------------------------------------
# the twelve models (E6)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("path_type", sorted(PATH_TYPES))
@pytest.mark.parametrize("with_link", [False, True],
                         ids=["plain", "flowlink"])
def test_path_model_passes_safety_and_spec(path_type, with_link):
    model = build_model(path_type, with_link)
    result = verify_model(model, max_states=300_000)
    assert result.safety_ok, "safety failed for %s" % result.key
    assert result.property_ok, "spec failed for %s" % result.key
    assert not result.truncated


def test_flowlink_blowup_direction(  ):
    """E7 (shape): one flowlink inflates every path type's state space
    and checking time — the Sec. VIII-A observation."""
    results = verify_all(max_states=300_000)
    table = blowup_table(results)
    assert set(table) == set(PATH_TYPES)
    for key, factors in table.items():
        assert factors["states_factor"] > 3.0, key
        assert factors["memory_factor"] > 3.0, key


def test_specs_are_not_vacuous_flowing():
    """The OO model really reaches bothFlowing somewhere (the
    recurrence check would pass vacuously on a model that never
    flows)."""
    from repro.verification import both_flowing
    model = build_model("OO", False)
    graph = explore(model.system, max_states=300_000)
    flowing = [s for s in graph.states
               if both_flowing(s.procs[model.left_index],
                               s.procs[model.right_index])]
    assert flowing


def test_specs_are_not_vacuous_closed():
    from repro.verification import both_closed
    model = build_model("CC", False)
    graph = explore(model.system, max_states=300_000)
    closed = [s for s in graph.states
              if both_closed(s.procs[model.left_index],
                             s.procs[model.right_index])]
    assert closed


def test_wrong_property_fails():
    """Cross-check the checker itself: CO must NOT satisfy
    ◇□bothClosed (the openslot keeps pushing), and CC must not satisfy
    □◇bothFlowing."""
    from repro.verification import both_closed, both_flowing
    co = build_model("CO", False)
    g = explore(co.system, max_states=300_000)
    left = lambda s: s.procs[co.left_index]
    right = lambda s: s.procs[co.right_index]
    violation = check_stability(
        g, lambda s: both_closed(left(s), right(s)))
    assert violation is not None
    cc = build_model("CC", False)
    g2 = explore(cc.system, max_states=300_000)
    violation2 = check_recurrence(
        g2, lambda s: both_flowing(s.procs[cc.left_index],
                                   s.procs[cc.right_index]))
    assert violation2 is not None


def test_race_handling_reachable_in_oo():
    """Both endpoints opening concurrently is reachable and resolved
    (no ModelError raised anywhere during full exploration)."""
    model = build_model("OO", False)
    graph = explore(model.system, max_states=300_000)
    both_opening = [s for s in graph.states
                    if s.procs[0].slot == "opening"
                    and s.procs[1].slot == "opening"]
    assert both_opening
