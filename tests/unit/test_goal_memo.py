"""Goal-poll memoization (third perf wave).

Every stimulus a box receives ends in ``Box._poll``, and before this
wave every poll re-evaluated the current state's transition guards even
when nothing a guard can read had changed.  Now ``SignalingAgent``
carries a ``goal_gen`` generation counter — bumped by every
``Slot._set_state`` (and its compiled FSM twin), every slot-name
binding change, and every channel teardown — and a program whose guards
are all pure functions of slot state records the generation at the end
of a full no-progress pass, letting ``Box._poll`` skip re-evaluation
until the counter moves.

These tests pin the three contracts: the :func:`memo_safe_guard`
classification, the skip itself (a meta signal no guard reads must not
re-run a memo-safe program's poll), and every invalidation edge
(state change, foreign-slot binding, program stop).
"""

import pytest

from repro import AUDIO, Network
from repro.core.predicates import (all_of, always, any_of, is_closed,
                                   is_flowing, memo_safe_guard, negate,
                                   slot_failed)
from repro.core.program import (Program, State, Timeout, Transition,
                                hold_slot, on_meta, open_slot)
from repro.protocol.signals import AppMeta


# ----------------------------------------------------------------------
# memo_safe_guard classification
# ----------------------------------------------------------------------
def test_slot_state_guards_are_memo_safe():
    for guard in (is_closed("s"), is_flowing("s"), slot_failed("s"),
                  always):
        assert memo_safe_guard(guard), guard


def test_combinators_recurse():
    assert memo_safe_guard(all_of(is_flowing("a"), is_closed("b")))
    assert memo_safe_guard(any_of(is_flowing("a"), negate(is_closed("b"))))
    # One event-consuming operand poisons the whole combinator.
    assert not memo_safe_guard(all_of(is_flowing("a"), on_meta("app")))


def test_event_consuming_and_opaque_guards_are_unsafe():
    # ``on_meta`` consumes its matching pending event when the chosen
    # transition fires; skipping its evaluation would leak the event.
    assert not memo_safe_guard(on_meta("app", "go"))
    # A hand-written callable can read anything (box attributes, the
    # clock); the classifier must refuse what it cannot see into.
    assert not memo_safe_guard(lambda program: True)


# ----------------------------------------------------------------------
# the skip, and every invalidation edge
# ----------------------------------------------------------------------
@pytest.fixture
def rig():
    net = Network(seed=41)
    box = net.box("srv")
    dev = net.device("dev", auto_accept=True)
    ch = net.channel(box, dev)
    box.name_slot("s", ch.end_for(box).slot())
    return net, box, dev, ch


def _count_polls(box, program):
    """Re-arm ``after_stimulus`` with a counting wrapper; ``Box._poll``
    still applies the generation gate before invoking it."""
    polls = []

    def counting():
        polls.append(box.goal_gen)
        program.poll()

    box.after_stimulus = counting
    return polls


def _flowing_program(box):
    """Open the named slot, then hold it; the ``hold`` state's guard
    (``is_closed``) stays false while the call is up, so every settle
    ends on a full no-progress pass — the memo-arming case."""
    return Program(box, {
        "up": State(goals=(open_slot("s", AUDIO),),
                    transitions=(Transition(is_flowing("s"), "hold"),)),
        "hold": State(goals=(hold_slot("s"),),
                      transitions=(Transition(is_closed("s"), "up"),)),
    }, initial="up")


def test_memo_safe_program_skips_redundant_polls(rig):
    net, box, dev, ch = rig
    program = _flowing_program(box)
    assert program._memo_safe
    program.start()
    net.settle()
    assert box.slot("s").is_flowing
    # The settle ended on a full all-false guard pass, so the memo is
    # armed: the recorded generation matches the live counter.
    assert box._poll_gen == box.goal_gen

    polls = _count_polls(box, program)
    # A meta signal changes no slot state; no memo-safe guard can see
    # it, so the poll must be skipped outright.
    ch.end_for(dev).send_meta(AppMeta("noise"))
    net.settle()
    assert polls == []


def test_state_change_invalidates_the_memo(rig):
    net, box, dev, ch = rig
    fired = []
    program = Program(box, {
        "up": State(goals=(open_slot("s", AUDIO),),
                    transitions=(Transition(is_flowing("s"), "hold"),)),
        "hold": State(goals=(hold_slot("s"),),
                      transitions=(Transition(
                          is_closed("s"), "up",
                          action=lambda p: fired.append(p.state_name)),)),
    }, initial="up")
    program.start()
    net.settle()
    assert program.state_name == "hold"
    polls = _count_polls(box, program)
    # The far side tears the tunnel down: Slot._set_state bumps the
    # generation, the memo misses, and the guard pass runs again.
    dev.close(ch.end_for(dev).slot())
    net.settle()
    assert polls  # re-evaluated
    assert fired  # ...and the now-true is_closed transition fired


def test_non_memo_safe_program_never_skips(rig):
    net, box, dev, ch = rig
    program = Program(box, {
        "up": State(goals=(open_slot("s", AUDIO),),
                    transitions=(Transition(on_meta("app", "go"),
                                            "done"),)),
        "done": State(goals=(hold_slot("s"),)),
    }, initial="up")
    assert not program._memo_safe
    program.start()
    net.settle()
    # An event-consuming guard disables the memo entirely: the recorded
    # generation stays disarmed and every stimulus polls.
    assert box._poll_gen == -1
    polls = _count_polls(box, program)
    ch.end_for(dev).send_meta(AppMeta("other"))
    net.settle()
    assert polls


def test_foreign_slot_binding_disables_the_memo(rig):
    net, box, dev, ch = rig
    # Binding a slot owned by *another* agent under a program-local
    # name: that slot's transitions bump the device's counter, not the
    # box's, so the memo must stand down for good.
    box.name_slot("theirs", ch.end_for(dev).slot())
    assert not box._goal_memo_ok
    program = Program(box, {
        "up": State(goals=(open_slot("s", AUDIO),),
                    transitions=(Transition(slot_failed("theirs"),
                                            "done"),)),
        "done": State(),
    }, initial="up")
    assert program._memo_safe  # the guards are safe; the binding is not
    program.start()
    net.settle()
    assert box._poll_gen == -1  # never armed
    polls = _count_polls(box, program)
    ch.end_for(dev).send_meta(AppMeta("noise"))
    net.settle()
    assert polls


def test_stop_disarms_the_memo(rig):
    net, box, dev, ch = rig
    program = _flowing_program(box)
    program.start()
    net.settle()
    assert box._poll_gen == box.goal_gen
    program.stop()
    # Whatever polls next (a successor program, a bare observer hook)
    # has never evaluated its guards; the recorded pass must not carry
    # over.
    assert box._poll_gen == -1


def test_binding_changes_bump_the_generation(rig):
    net, box, dev, ch = rig
    before = box.goal_gen
    box.declare_slot("later")
    ch2 = net.channel(box, net.device("dev2", auto_accept=True))
    box.name_slot("later", ch2.end_for(box).slot())
    assert box.goal_gen > before
    before = box.goal_gen
    box.forget_slot("later")
    assert box.goal_gen > before
