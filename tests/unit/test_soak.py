"""Unit tests for the sustained-churn soak harness and its memory
gate."""

import pytest

from repro.load.soak import (SOAK_PROFILES, TRACKED_TYPES, memory_gate,
                             run_soak)


def _short(name, **overrides):
    """A CI-sized cut of a named profile.  Epochs stay 2s long and the
    warmup stays 2 epochs: the per-link Event freelists take a few
    simulated seconds to fill, and gating against a pre-warm baseline
    reads that legitimate pool growth as a leak."""
    profile = SOAK_PROFILES[name]
    params = dict(epochs=6, epoch_seconds=2.0, warmup_epochs=2)
    params.update(overrides)
    return profile._replace(**params)


def test_profiles_cover_the_three_workload_shapes():
    assert set(SOAK_PROFILES) == {"steady", "overload", "churn"}
    assert SOAK_PROFILES["steady"].admission is None
    assert SOAK_PROFILES["overload"].admission is not None
    # Every stock profile gates over 60 simulated seconds.
    for profile in SOAK_PROFILES.values():
        assert profile.epochs * profile.epoch_seconds == 60.0


def test_steady_soak_passes_gates_and_accounts_every_session():
    report = run_soak(_short("steady"), seed=7)
    assert report["ok"]
    assert report["memory_gate"]["ok"]
    assert report["safety"]["violations"] == []
    s = report["sessions"]
    assert s["started"] > 0 and s["live_now"] == 0
    assert s["started"] == (s["completed"] + s["shed_nomedia"]
                            + s["abandoned_in_backoff"]
                            + s["failed_other"])
    # No admission on steady: nothing sheds, everything completes.
    assert s["shed_nomedia"] == 0 and report["admission"] is None
    # The counters also flow through the metrics registry.
    counters = report["metrics"]["counters"]
    assert counters["soak.sessions.started"] == s["started"]


def test_overload_soak_sheds_to_nomedia_without_violations():
    report = run_soak(_short("overload", epochs=6, epoch_seconds=2.0),
                      seed=7)
    s = report["sessions"]
    assert s["shed_nomedia"] > 0          # calls degraded gracefully
    assert report["safety"]["violations"] == []   # and safely
    admission = report["admission"]
    shed = (admission["shed_rate"] + admission["shed_concurrent"]
            + admission["shed_tenant"])
    assert shed > 0 and admission["admitted"] > 0
    assert report["metrics"]["counters"][
        "soak.admission.shed_concurrent"] == admission["shed_concurrent"]
    # Backpressure on a loaded wire actually engaged at least once.
    assert report["backpressure"]["deferred_total"] >= 0


def test_soak_is_deterministic_for_a_seed():
    a = run_soak(_short("churn"), seed=13)
    b = run_soak(_short("churn"), seed=13)
    assert a["sessions"] == b["sessions"]
    assert a["executed"] == b["executed"]
    assert a["sim_time"] == b["sim_time"]
    c = run_soak(_short("churn"), seed=14)
    assert c["sessions"] != a["sessions"]


def test_gate_disabled_still_reports():
    report = run_soak(_short("steady", epochs=2), seed=7, gate=False)
    assert report["memory_gate"]["ok"]
    assert report["memory_gate"]["checks"] == []


# ----------------------------------------------------------------------
# the memory gate on synthetic samples
# ----------------------------------------------------------------------
def _sample(epoch, count, heap=10, rss=50_000):
    return {"epoch": epoch, "rss_kb": rss,
            "objects": dict.fromkeys(TRACKED_TYPES, count),
            "lanes": {"heap_len": heap}}


def test_memory_gate_accepts_flat_populations():
    samples = [_sample(i, 100) for i in range(6)]
    verdict = memory_gate(samples, warmup_epochs=2)
    assert verdict["ok"]
    assert verdict["epochs_compared"] == [2, 5]


def test_memory_gate_ignores_warmup_growth():
    # A pool filling during warmup is legitimate; growth stops after.
    samples = [_sample(0, 10), _sample(1, 500)] + \
        [_sample(i, 520) for i in range(2, 6)]
    assert memory_gate(samples, warmup_epochs=2)["ok"]


def test_memory_gate_fails_on_sustained_object_growth():
    # One leaked object per call blows past abs+rel tolerance.
    samples = [_sample(i, 100 + i * 200) for i in range(6)]
    verdict = memory_gate(samples, warmup_epochs=2)
    assert not verdict["ok"]
    bad = [c for c in verdict["checks"] if not c["ok"]]
    assert bad and bad[0]["metric"].startswith("objects.")


def test_memory_gate_fails_on_scheduler_heap_growth():
    samples = [_sample(i, 100, heap=10 + i * 500) for i in range(6)]
    verdict = memory_gate(samples, warmup_epochs=2)
    assert not verdict["ok"]
    assert any(c["metric"] == "lanes.heap_len" and not c["ok"]
               for c in verdict["checks"])


def test_memory_gate_fails_on_rss_growth_beyond_tolerance():
    samples = [_sample(i, 100, rss=50_000 + i * 20_000)
               for i in range(6)]
    verdict = memory_gate(samples, warmup_epochs=2)
    assert not verdict["ok"]
    assert any(c["metric"] == "rss_kb" and not c["ok"]
               for c in verdict["checks"])


def test_memory_gate_skips_rss_where_proc_is_unavailable():
    samples = [_sample(i, 100, rss=0) for i in range(6)]
    verdict = memory_gate(samples, warmup_epochs=2)
    assert verdict["ok"]
    assert not any(c["metric"] == "rss_kb" for c in verdict["checks"])


def test_memory_gate_needs_two_post_warmup_epochs():
    samples = [_sample(i, 100) for i in range(3)]
    verdict = memory_gate(samples, warmup_epochs=2)
    assert verdict["ok"] and "note" in verdict
