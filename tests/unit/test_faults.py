"""Unit tests for the fault-injection layer (network/faults.py):
plan algebra, the faulty transmit path, link flaps, and crash windows."""

import pytest

from repro.network.eventloop import EventLoop
from repro.network.faults import (PLANS, CrashSchedule, FaultPlan,
                                  FaultStats, FaultyLink)
from repro.network.latency import FixedLatency
from repro.network.node import Node
from repro.network.transport import Link

from .test_transport import collect


def lossy_link(seed, plan, exempt=None):
    loop = EventLoop(seed=seed)
    link = Link(loop, FixedLatency(0.1))
    faulty = FaultyLink(link, plan, exempt=exempt)
    return loop, link, faulty


def test_same_seed_same_trace():
    """The adversary draws from the loop's rng: one seed, one trace."""
    plan = FaultPlan(drop=0.3, duplicate=0.3, jitter=0.02)
    traces = []
    for _ in range(2):
        loop, link, faulty = lossy_link(11, plan)
        got = collect(link.ends[1])
        times = []
        link.ends[1].set_receiver(
            lambda m, got=got, times=times: (got.append(m),
                                             times.append(loop.now)))
        for i in range(100):
            link.ends[0].send(i)
        loop.run()
        traces.append((got, times, faulty.stats.to_json()))
    assert traces[0] == traces[1]


def test_different_seeds_differ():
    plan = FaultPlan(drop=0.3)
    outcomes = set()
    for seed in (1, 2, 3):
        loop, link, faulty = lossy_link(seed, plan)
        got = collect(link.ends[1])
        for i in range(50):
            link.ends[0].send(i)
        loop.run()
        outcomes.add(tuple(got))
    assert len(outcomes) > 1


def test_certain_drop_loses_everything():
    loop, link, faulty = lossy_link(0, FaultPlan(drop=1.0))
    got = collect(link.ends[1])
    for i in range(10):
        link.ends[0].send(i)
    loop.run()
    assert got == []
    assert faulty.stats.dropped == 10
    assert faulty.stats.forwarded == 0


def test_certain_duplicate_doubles_everything():
    loop, link, faulty = lossy_link(0, FaultPlan(duplicate=1.0))
    got = collect(link.ends[1])
    for i in range(5):
        link.ends[0].send(i)
    loop.run()
    assert sorted(got) == sorted(list(range(5)) * 2)
    assert faulty.stats.duplicated == 5
    assert faulty.stats.forwarded == 10


def test_duplicated_copies_suffer_drop_independently():
    # With both certain, each message yields two copies, both dropped.
    loop, link, faulty = lossy_link(0, FaultPlan(drop=1.0, duplicate=1.0))
    got = collect(link.ends[1])
    link.ends[0].send("x")
    loop.run()
    assert got == []
    assert faulty.stats.duplicated == 1
    assert faulty.stats.dropped == 2


def test_jitter_delays_but_preserves_fifo():
    loop, link, faulty = lossy_link(4, FaultPlan(jitter=0.05))
    got = []
    times = []
    link.ends[1].set_receiver(
        lambda m: (got.append(m), times.append(loop.now)))
    for i in range(20):
        link.ends[0].send(i)
    loop.run()
    assert got == list(range(20))  # horizon clamp still applies
    assert faulty.stats.jittered == 20
    assert all(t >= 0.1 for t in times)
    assert any(t > 0.1 for t in times)


def test_reorder_can_overtake():
    # Reordered deliveries skip the FIFO horizon; with jitter in play
    # some message overtakes an earlier one.
    plan = FaultPlan(reorder=1.0, jitter=0.2)
    loop, link, faulty = lossy_link(5, plan)
    got = collect(link.ends[1])
    for i in range(50):
        link.ends[0].send(i)
    loop.run()
    assert sorted(got) == list(range(50))  # nothing lost
    assert got != list(range(50))          # but not in order
    assert faulty.stats.reordered == 50


def test_exempt_messages_pass_faithfully():
    exempt = lambda m: isinstance(m, str) and m.startswith("meta:")
    loop, link, faulty = lossy_link(0, FaultPlan(drop=1.0), exempt=exempt)
    got = collect(link.ends[1])
    link.ends[0].send("meta:teardown")
    link.ends[0].send("payload")
    loop.run()
    assert got == ["meta:teardown"]
    assert faulty.stats.exempted == 1
    assert faulty.stats.dropped == 1


def test_uninstall_restores_faithful_transmit():
    loop, link, faulty = lossy_link(0, FaultPlan(drop=1.0))
    got = collect(link.ends[1])
    link.ends[0].send("lost")
    faulty.uninstall()
    link.ends[0].send("kept")
    loop.run()
    assert got == ["kept"]


def test_flap_drops_in_flight_and_recovers():
    plan = FaultPlan(flaps=((0.05, 0.2),))
    loop, link, faulty = lossy_link(0, plan)
    got = collect(link.ends[1])
    link.ends[0].send("in-flight")      # delivery due at 0.1, flap at 0.05
    loop.schedule_at(0.15, link.ends[0].send, "during-outage")
    loop.schedule_at(0.5, link.ends[0].send, "after-recovery")
    loop.run()
    assert got == ["after-recovery"]
    assert faulty.stats.flap_drops == 1
    assert not link.down


def test_flap_respects_real_teardown():
    plan = FaultPlan(flaps=((0.05, 0.2),))
    loop, link, faulty = lossy_link(0, plan)
    collect(link.ends[1])
    link.tear_down()
    loop.run()
    # The flap window must not resurrect a link torn down for real.
    assert link.down


def test_faults_apply_in_both_directions():
    # The wrapper replaces the shared link.transmit, so each direction
    # passes through the plan.
    loop, link, faulty = lossy_link(0, FaultPlan(drop=1.0))
    got_a, got_b = collect(link.ends[0]), collect(link.ends[1])
    link.ends[0].send("to-b")
    link.ends[1].send("to-a")
    loop.run()
    assert got_a == [] and got_b == []
    assert faulty.stats.dropped == 2


def test_crash_schedule_drops_stimuli_while_offline():
    loop = EventLoop()
    node = Node(loop, cost=0.0)
    sched = CrashSchedule(node, windows=((1.0, 0.5),))
    out = []
    loop.schedule_at(1.2, node.enqueue, out.append, "lost")
    loop.schedule_at(2.0, node.enqueue, out.append, "kept")
    loop.run()
    assert out == ["kept"]
    assert sched.crashes == 1
    assert node.dropped_while_offline == 1
    assert not node.offline


def test_crash_cancels_the_dead_incarnations_timers():
    """Regression: a timer armed before a crash must not fire into the
    restarted node.  The crash drops volatile state, and a pending
    alarm (retransmit timer, staleness timer) is exactly that — before
    the fix it survived the crash and fired as a ghost of the dead
    incarnation after recovery."""
    loop = EventLoop()
    node = Node(loop, cost=0.0)
    sched = CrashSchedule(node, windows=((1.0, 0.5),))
    fired = []
    # Armed at t=0.5 to fire at t=2.0 — after the node has recovered
    # (t=1.5), so node.enqueue alone would happily deliver it.
    loop.schedule_at(0.5, node.set_timer, 1.5, fired.append, "ghost")
    # A timer armed *after* recovery belongs to the new incarnation.
    loop.schedule_at(1.6, node.set_timer, 0.5, fired.append, "fresh")
    loop.run()
    assert fired == ["fresh"]
    assert sched.crashes == 1
    assert sched.timers_cancelled == 1
    assert not node.offline


def test_cancel_timers_counts_only_live_timers():
    loop = EventLoop()
    node = Node(loop, cost=0.0)
    fired = []
    node.set_timer(0.1, fired.append, "early")
    survivor = node.set_timer(5.0, fired.append, "late")
    survivor.cancel()  # user-cancelled before the crash
    loop.advance(1.0)  # the early timer fires normally
    armed = node.set_timer(5.0, fired.append, "pending")
    assert node.cancel_timers() == 1  # only the armed one was live
    loop.run()
    assert fired == ["early"]
    assert armed.cancelled


def test_stats_merge_and_json_roundtrip():
    a = FaultStats(forwarded=3, dropped=1)
    b = FaultStats(duplicated=2, exempted=4)
    merged = a.merge(b)
    assert merged.forwarded == 3 and merged.dropped == 1
    assert merged.duplicated == 2 and merged.exempted == 4
    payload = merged.to_json()
    assert set(payload) == {"forwarded", "dropped", "duplicated",
                            "reordered", "jittered", "flap_drops",
                            "exempted"}


def test_plan_describe_is_json_friendly():
    plan = PLANS["flaky"]
    desc = plan.describe()
    assert desc["name"] == "flaky"
    assert desc["drop"] == pytest.approx(0.05)
    assert desc["flaps"] == [[1.0, 0.4], [4.0, 0.4]]
