"""Unit tests for per-link backpressure: the in-flight high-water
mark, the FIFO drain queue, and fingerprint neutrality when the mark
is never hit."""

import pytest

from repro.network.eventloop import EventLoop
from repro.network.latency import FixedLatency
from repro.network.network import Network
from repro.network.transport import Link
from repro.protocol.codecs import AUDIO


def _link(high_water=None, delay=0.1):
    loop = EventLoop()
    link = Link(loop, latency=FixedLatency(delay))
    got = []
    link.ends[1].set_receiver(got.append)
    if high_water is not None:
        link.set_backpressure(high_water)
    return loop, link, got


def test_rejects_nonpositive_high_water():
    _, link, _ = _link()
    with pytest.raises(ValueError):
        link.set_backpressure(0)
    with pytest.raises(ValueError):
        link.set_backpressure(-3)


def test_transmits_above_the_mark_are_deferred_then_drained():
    loop, link, got = _link(high_water=2)
    for i in range(5):
        link.ends[0].send(i)
    stats = link.backpressure_stats()
    assert stats["in_flight"] == 2
    assert stats["deferred_now"] == 3
    assert stats["deferred_total"] == 3 and stats["deferred_peak"] == 3
    assert loop.pending() == 2  # only the in-flight pair is scheduled
    loop.run()
    # Everything arrives, in send order, and the queue is empty.
    assert got == [0, 1, 2, 3, 4]
    final = link.backpressure_stats()
    assert final["in_flight"] == 0 and final["deferred_now"] == 0
    assert final["deferred_total"] == 3  # the historical counter stays


def test_under_the_mark_nothing_is_deferred():
    loop, link, got = _link(high_water=8)
    for i in range(5):
        link.ends[0].send(i)
    loop.run()
    assert got == [0, 1, 2, 3, 4]
    assert link.backpressure_stats()["deferred_total"] == 0


def test_drain_happens_per_delivery_not_per_run():
    loop, link, got = _link(high_water=1, delay=0.1)
    for i in range(3):
        link.ends[0].send(i)
    # One delivery per latency interval: each one admits the next
    # deferred transmit, so arrivals are strictly serialized.
    loop.advance(0.1)
    assert got == [0]
    loop.advance(0.1)
    assert got == [0, 1]
    loop.advance(0.1)
    assert got == [0, 1, 2]


def test_teardown_drops_deferred_traffic_too():
    loop, link, got = _link(high_water=1)
    for i in range(4):
        link.ends[0].send(i)
    assert link.backpressure_stats()["deferred_now"] == 3
    link.tear_down()
    loop.run()
    assert got == []
    stats = link.backpressure_stats()
    assert stats["deferred_now"] == 0 and stats["in_flight"] == 0
    # A dead link drains nothing, even if more sends trickle in.
    link.ends[0].send("late")
    loop.run()
    assert got == []


def test_removing_the_bound_restores_the_faithful_transmit():
    loop, link, got = _link(high_water=1)
    link.ends[0].send("a")
    link.set_backpressure(None)
    for i in range(5):
        link.ends[0].send(i)
    # Unbounded again: all five go straight onto the wire.
    assert loop.pending() == 6
    loop.run()
    assert got == ["a", 0, 1, 2, 3, 4]


def _call_fingerprint(backpressure):
    """Executed-event count and final clock of one full call under the
    given network-wide backpressure setting."""
    net = Network(seed=11, latency=FixedLatency(0.02),
                  backpressure=backpressure)
    a = net.device("alice")
    b = net.device("bob", auto_accept=True)
    ch = net.channel(a, b)
    slot = ch.end_for(a).slot()
    a.open(slot, AUDIO)
    net.settle()
    a.refresh_descriptor(slot)
    net.settle()
    a.close(slot)
    net.settle()
    return (net.loop.executed, net.loop.now, ch.link.sent)


def test_unhit_mark_is_fingerprint_neutral():
    """A configured-but-never-reached high-water mark must not change
    timing, ordering, or event counts at all (the acceptance bar for
    the overload layer: zero behavior change when limits are idle)."""
    unbounded = _call_fingerprint(None)
    bounded = _call_fingerprint(1000)
    assert bounded == unbounded


def test_network_installs_the_mark_on_every_channel():
    net = Network(seed=3, backpressure=7)
    a = net.device("a")
    b = net.device("b", auto_accept=True)
    ch = net.channel(a, b)
    assert ch.link.backpressure_stats()["high_water"] == 7
