"""The backend build script's staleness logic: the script itself is a
build input, flag profiles are stamped, and ``--print-artifact`` is a
stable machine interface (CI cache keys)."""

import importlib.util
import os
import subprocess
import sys

import pytest

_TOOLS = os.path.normpath(os.path.join(
    os.path.dirname(__file__), "..", "..", "tools", "build_backend.py"))


@pytest.fixture()
def bb(monkeypatch, tmp_path):
    """A private import of the build module, its paths pointed at a
    throwaway tree so tests never touch the real artifact."""
    spec = importlib.util.spec_from_file_location("_bb_under_test",
                                                  _TOOLS)
    mod = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = mod
    spec.loader.exec_module(mod)

    source = tmp_path / "_ccore.c"
    script = tmp_path / "build_backend.py"
    artifact = tmp_path / "_ccore.so"
    source.write_text("/* c */")
    script.write_text("# build script")
    monkeypatch.setattr(mod, "SOURCE", str(source))
    monkeypatch.setattr(mod, "SCRIPT", str(script))
    monkeypatch.setattr(mod, "ARTIFACT", str(artifact))
    monkeypatch.setattr(mod, "STAMP", str(artifact) + ".buildstamp")
    yield mod
    del sys.modules[spec.name]


def _age(path, seconds):
    old = os.path.getmtime(path) - seconds
    os.utime(path, (old, old))


def _make_current(bb, profile="opt"):
    with open(bb.ARTIFACT, "w") as fh:
        fh.write("artifact")
    with open(bb.STAMP, "w") as fh:
        fh.write(profile + "\n")
    _age(bb.SOURCE, 100)
    _age(bb.SCRIPT, 100)


def test_missing_artifact_is_stale(bb):
    assert not bb.artifact_is_current()


def test_fresh_artifact_is_current(bb):
    _make_current(bb)
    assert bb.artifact_is_current()


def test_newer_source_invalidates(bb):
    _make_current(bb)
    _age(bb.ARTIFACT, 200)  # now older than the source
    assert not bb.artifact_is_current()


def test_newer_build_script_invalidates(bb):
    # The script's flags decide the artifact, so editing the script
    # must retrigger the build even when the C source is untouched.
    _make_current(bb)
    os.utime(bb.SCRIPT)  # touched after the artifact
    assert not bb.artifact_is_current()


def test_flag_profile_mismatch_invalidates(bb):
    _make_current(bb, profile="opt")
    assert bb.artifact_is_current()
    assert not bb.artifact_is_current(debug=True, sanitize=True)
    _make_current(bb, profile="debug+asan-ubsan")
    assert bb.artifact_is_current(debug=True, sanitize=True)
    assert not bb.artifact_is_current()


def test_missing_stamp_means_plain_opt_build(bb):
    # Artifacts from before the stamp existed were all plain builds.
    _make_current(bb)
    os.unlink(bb.STAMP)
    assert bb.artifact_is_current()
    assert not bb.artifact_is_current(sanitize=True)


def test_profile_names():
    spec = importlib.util.spec_from_file_location("_bb_profile", _TOOLS)
    mod = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = mod
    try:
        spec.loader.exec_module(mod)
        assert mod._profile(False, False) == "opt"
        assert mod._profile(True, False) == "debug"
        assert mod._profile(True, True) == "debug+asan-ubsan"
        cmd = mod._compile_cmd(debug=True, sanitize=True)
        assert "-Og" in cmd and "-fsanitize=address,undefined" in cmd
        assert "-O3" not in cmd
    finally:
        del sys.modules[spec.name]


def test_print_artifact_is_bare_path():
    proc = subprocess.run([sys.executable, _TOOLS, "--print-artifact"],
                          capture_output=True, text=True)
    assert proc.returncode == 0
    path = proc.stdout.strip()
    assert "\n" not in path
    assert os.path.basename(path).startswith("_ccore")
    assert path.endswith((".so", ".pyd"))
