"""Equivalence of the interned engine with the seed implementation.

The optimized exploration engine (interned states, memoized
transitions, copy-light apply) must be *semantically invisible*: for
every model it has to reproduce the seed implementation's exact state
and transition counts and the same safety/spec verdicts.  Three layers
of defence:

* golden-count regression against numbers recorded from the seed
  implementation (commit 4d7dcd4) for all 12 path models;
* state-by-state cross-check of the engine's successors against the
  reference :meth:`SystemModel.successors` kernel;
* focused unit tests for blocking-send semantics and the memoization
  cache under nondeterministic outcomes.
"""

import pytest

from repro.verification import (InternedEngine, PATH_TYPES, QueueDef,
                                SystemModel, all_models, build_model,
                                explore, verify_model)
from repro.verification.kernel import ProcessModel

# (states, transitions) recorded from the seed implementation with
# default model kwargs — the engine must reproduce them exactly.
SEED_COUNTS = {
    "CC": (81, 132), "CH": (90, 149), "CO": (96, 154),
    "HH": (194, 388), "HO": (266, 519), "OO": (267, 520),
    "CC+link": (469, 1013), "CH+link": (494, 1082),
    "CO+link": (606, 1284), "HH+link": (1310, 3324),
    "HO+link": (1890, 4595), "OO+link": (2194, 5313),
}

# Same, for the two-flowlink extension models (E6-ext).
SEED_COUNTS_TWOLINK = {
    "CC+2links": (1926, 5243), "CH+2links": (2076, 5712),
    "CO+2links": (3146, 8540), "HH+2links": (4833, 14125),
    "HO+2links": (7868, 22586), "OO+2links": (10592, 30674),
}


# ----------------------------------------------------------------------
# golden counts + verdicts for the full sweep
# ----------------------------------------------------------------------
@pytest.mark.parametrize("path_type", sorted(PATH_TYPES))
@pytest.mark.parametrize("with_link", [False, True],
                         ids=["plain", "flowlink"])
def test_golden_counts_and_verdicts(path_type, with_link):
    model = build_model(path_type, with_link)
    result = verify_model(model, max_states=300_000)
    assert (result.states, result.transitions) == SEED_COUNTS[result.key]
    assert result.safety_ok
    assert result.property_ok
    assert not result.truncated


@pytest.mark.parametrize("path_type", sorted(PATH_TYPES))
def test_golden_counts_two_flowlinks(path_type):
    result = verify_model(build_model(path_type, flowlinks=2),
                          max_states=300_000)
    assert (result.states, result.transitions) \
        == SEED_COUNTS_TWOLINK[result.key]
    assert result.ok


# ----------------------------------------------------------------------
# engine vs. reference kernel, state by state
# ----------------------------------------------------------------------
@pytest.mark.parametrize("key", ["CC", "OO", "HO+link"])
def test_engine_matches_reference_kernel(key):
    """Every explored state's successor *multiset* (decoded) equals the
    reference kernel's, in the same order."""
    path_type, _, link = key.partition("+")
    model = build_model(path_type, with_flowlink=bool(link))
    graph = explore(model.system)
    engine = graph.engine
    for sid in range(graph.state_count):
        decoded = graph.states[sid]
        reference = model.system.successors(decoded)
        mine = [engine.decode(k) for k in engine.expand(graph.packed[sid])]
        assert mine == reference, "state %d of %s diverges" % (sid, key)


def test_initial_state_roundtrip():
    model = build_model("HH", True)
    engine = InternedEngine(model.system)
    assert engine.decode(engine.initial_key()) \
        == model.system.initial_state()


# ----------------------------------------------------------------------
# blocking-send semantics
# ----------------------------------------------------------------------
class Flooder(ProcessModel):
    """Internally sends 'x' forever; the bounded queue must throttle."""

    name = "flooder"

    def __init__(self, out):
        self.out = out

    def initial(self):
        return ("flood",)

    def receive(self, local, qi, msg):  # pragma: no cover - never used
        return [(local, [])]

    def internal_actions(self, local):
        return [(local, [(self.out, ("x",))])]


class Consumer(ProcessModel):
    name = "consumer"

    def initial(self):
        return ("c",)

    def receive(self, local, qi, msg):
        return [(local, [])]


def test_blocking_send_disables_transition():
    """With capacity 2, exactly 3 queue fills are reachable (0, 1, 2
    messages); the send from the full state is disabled, not dropped."""
    model = SystemModel("flood", [Flooder(0), Consumer()],
                        [QueueDef("q", receiver=1, capacity=2)])
    graph = explore(model)
    assert graph.state_count == 3
    fills = sorted(len(s.queues[0]) for s in graph.states)
    assert fills == [0, 1, 2]
    # the full state still has a receive successor, so no deadlock
    assert graph.terminal_ids() == []


class TwoSender(ProcessModel):
    """One internal action that sends TWO messages at once: the
    all-or-nothing blocking semantics must hold for the pair."""

    name = "twosender"

    def __init__(self, out):
        self.out = out

    def initial(self):
        return ("s", 2)

    def receive(self, local, qi, msg):  # pragma: no cover - never used
        return [(local, [])]

    def internal_actions(self, local):
        _, budget = local
        if budget <= 0:
            return []
        return [(("s", budget - 1),
                 [(self.out, ("a",)), (self.out, ("b",))])]


class Deaf(ProcessModel):
    name = "deaf"

    def initial(self):
        return ("deaf",)

    def can_receive(self, local):
        return False

    def receive(self, local, qi, msg):  # pragma: no cover - never used
        return [(local, [])]


def test_blocking_send_is_all_or_nothing():
    """Capacity 3 and a 2-message send: the second burst would overflow
    at its second message, so it is disabled entirely — no state with 3
    queued messages exists."""
    model = SystemModel("burst", [TwoSender(0), Deaf()],
                        [QueueDef("q", receiver=1, capacity=3)])
    graph = explore(model)
    fills = sorted(len(s.queues[0]) for s in graph.states)
    assert fills == [0, 2]
    assert graph.state_count == 2


# ----------------------------------------------------------------------
# memoization under nondeterminism
# ----------------------------------------------------------------------
class CountingCoin(ProcessModel):
    """Receives 'flip' and nondeterministically answers heads/tails,
    counting how many times ``receive`` is actually evaluated."""

    name = "coin"

    def __init__(self):
        self.receive_calls = 0
        self.internal_calls = 0

    def initial(self):
        return ("coin", 0)

    def receive(self, local, qi, msg):
        self.receive_calls += 1
        _, flips = local
        return [(("coin", flips + 1), []),   # heads
                (("coin", flips - 1), [])]   # tails


class FlipFeeder(ProcessModel):
    name = "feeder"

    def __init__(self, out, rounds):
        self.out = out
        self.rounds = rounds

    def initial(self):
        return ("f", self.rounds)

    def receive(self, local, qi, msg):  # pragma: no cover - never used
        return [(local, [])]

    def internal_actions(self, local):
        _, k = local
        if k <= 0:
            return []
        return [(("f", k - 1), [(self.out, ("flip",))])]


def test_receive_memoized_once_per_distinct_key():
    """Nondeterministic outcomes memoize as a unit: ``receive`` runs
    once per distinct (local, queue, message) triple even though the
    BFS applies its outcomes from many global states."""
    coin = CountingCoin()
    model = SystemModel("coin", [FlipFeeder(0, 3), coin],
                        [QueueDef("q", receiver=1, capacity=3)])
    graph = explore(model)
    # distinct coin locals seen while receiving: one per running total
    # reachable with 3 flips: {0, 1, -1, 2, -2} before the final flip
    # lands => receive evaluated once per distinct total, never per
    # global state.
    assert coin.receive_calls == len(
        {s.procs[1] for s in graph.states
         if s.queues[0]})  # states where a receive was expandable
    # sanity: exploration visited far more global states than that
    assert graph.state_count > coin.receive_calls


def test_both_nondeterministic_outcomes_survive_memoization():
    coin = CountingCoin()
    model = SystemModel("coin", [FlipFeeder(0, 2), coin],
                        [QueueDef("q", receiver=1, capacity=2)])
    graph = explore(model)
    totals = {s.procs[1][1] for s in graph.states}
    # two flips: totals -2, -1, 0, 1, 2 must all be reachable
    assert totals == {-2, -1, 0, 1, 2}


# ----------------------------------------------------------------------
# exploration bound (intern-time enforcement)
# ----------------------------------------------------------------------
def test_truncated_graph_never_exceeds_bound():
    """The seed explorer could overshoot ``max_states`` by a BFS level;
    the bound is now exact."""
    model = build_model("OO", True)
    for bound in (10, 50, 137):
        graph = explore(model.system, max_states=bound,
                        on_truncate="mark")
        assert graph.truncated
        assert graph.state_count <= bound
    # a bound the model fits inside does not truncate
    full = explore(model.system, max_states=SEED_COUNTS["OO+link"][0])
    assert not full.truncated


def test_time_budget_truncates():
    model = build_model("OO", flowlinks=2)
    graph = explore(model.system, max_seconds=0.0, on_truncate="mark")
    assert graph.truncated
    assert graph.state_count < SEED_COUNTS_TWOLINK["OO+2links"][0]


def test_compact_adjacency_matches_counts():
    """The ragged-array adjacency agrees with the per-state views."""
    model = build_model("CH", True)
    graph = explore(model.system)
    assert sum(len(graph.successors[i])
               for i in range(graph.state_count)) \
        == graph.transition_count
    assert graph.memory_proxy \
        == graph.state_count + graph.transition_count
    stats = graph.engine.cache_stats()
    assert stats["receive_entries"] > 0
    assert stats["local_states"] < graph.state_count
