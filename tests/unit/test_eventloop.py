"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.network.eventloop import EventLoop, QuiescenceError


def test_events_fire_in_time_order():
    loop = EventLoop()
    out = []
    loop.schedule(3.0, out.append, "c")
    loop.schedule(1.0, out.append, "a")
    loop.schedule(2.0, out.append, "b")
    loop.run()
    assert out == ["a", "b", "c"]


def test_same_time_events_fire_in_schedule_order():
    loop = EventLoop()
    out = []
    for tag in "abcde":
        loop.schedule(1.0, out.append, tag)
    loop.run()
    assert out == list("abcde")


def test_priority_breaks_ties():
    loop = EventLoop()
    out = []
    loop.schedule(1.0, out.append, "late", priority=5)
    loop.schedule(1.0, out.append, "early", priority=-5)
    loop.run()
    assert out == ["early", "late"]


def test_now_advances_with_events():
    loop = EventLoop()
    seen = []
    loop.schedule(2.5, lambda: seen.append(loop.now))
    loop.run()
    assert seen == [2.5]
    assert loop.now == 2.5


def test_negative_delay_rejected():
    loop = EventLoop()
    with pytest.raises(ValueError):
        loop.schedule(-0.1, lambda: None)


def test_cancelled_event_does_not_fire():
    loop = EventLoop()
    out = []
    event = loop.schedule(1.0, out.append, "x")
    event.cancel()
    loop.run()
    assert out == []


def test_cancel_is_idempotent():
    loop = EventLoop()
    event = loop.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    loop.run()


def test_run_until_respects_bound():
    loop = EventLoop()
    out = []
    loop.schedule(1.0, out.append, "in")
    loop.schedule(5.0, out.append, "out")
    loop.run(until=2.0)
    assert out == ["in"]
    assert loop.now == 2.0
    loop.run()
    assert out == ["in", "out"]


def test_events_scheduled_during_run_execute():
    loop = EventLoop()
    out = []

    def first():
        loop.schedule(1.0, out.append, "second")
        out.append("first")

    loop.schedule(1.0, first)
    loop.run()
    assert out == ["first", "second"]


def test_schedule_at_absolute_time():
    loop = EventLoop()
    out = []
    loop.schedule(1.0, lambda: loop.schedule_at(5.0, out.append, loop.now))
    loop.run()
    assert loop.now == 5.0


def test_run_until_quiescent_raises_on_livelock():
    loop = EventLoop()

    def rearm():
        loop.schedule(1.0, rearm)

    loop.schedule(1.0, rearm)
    with pytest.raises(QuiescenceError):
        loop.run_until_quiescent(max_events=100)


def test_quiescence_error_carries_structured_payload():
    """Chaos-test failures are diagnosed from the exception alone: the
    spent budget, how many events are still live, and which one fires
    next."""
    loop = EventLoop()

    def rearm():
        loop.schedule(1.0, rearm)

    loop.schedule(1.0, rearm)
    with pytest.raises(QuiescenceError) as exc:
        loop.run_until_quiescent(max_events=50)
    err = exc.value
    assert err.max_events == 50
    assert err.pending == 1
    assert isinstance(err.next_event, str) and "rearm" in err.next_event
    assert "50" in str(err) and err.next_event in str(err)


def test_quiescence_error_skips_cancelled_heap_heads():
    loop = EventLoop()

    def rearm():
        loop.schedule(1.0, rearm)

    dead = loop.schedule(0.5, lambda: None)
    loop.schedule(200.0, rearm)
    loop.run(until=100.0)  # burn nothing; dead is still heaped
    dead.cancel()
    with pytest.raises(QuiescenceError) as exc:
        loop.run_until_quiescent(max_events=10)
    # next_event reports the live rearm timer, not the cancelled head.
    assert "rearm" in exc.value.next_event


def test_quiescence_error_surfaced_in_protocol_errors():
    from repro.protocol import errors
    assert errors.QuiescenceError is QuiescenceError
    assert "QuiescenceError" in errors.__all__


def test_advance_moves_clock_even_without_events():
    loop = EventLoop()
    loop.advance(10.0)
    assert loop.now == 10.0


def test_step_returns_false_when_empty():
    loop = EventLoop()
    assert loop.step() is False
    loop.schedule(0.0, lambda: None)
    assert loop.step() is True


def test_pending_counts_live_events():
    loop = EventLoop()
    e1 = loop.schedule(1.0, lambda: None)
    loop.schedule(2.0, lambda: None)
    assert loop.pending() == 2
    e1.cancel()
    assert loop.pending() == 1


def test_pending_is_exact_after_execution_and_cancel():
    """The live-event counter (O(1) ``pending``) stays consistent
    through every lifecycle: schedule, execute, cancel, re-cancel."""
    loop = EventLoop()
    events = [loop.schedule(float(i), lambda: None) for i in range(5)]
    assert loop.pending() == 5
    loop.step()
    assert loop.pending() == 4
    events[2].cancel()
    events[3].cancel()
    assert loop.pending() == 2
    loop.run()
    assert loop.pending() == 0


def test_cancel_after_execution_does_not_corrupt_counter():
    loop = EventLoop()
    event = loop.schedule(1.0, lambda: None)
    other = loop.schedule(2.0, lambda: None)
    loop.step()           # executes `event`
    assert loop.pending() == 1
    event.cancel()        # late cancel of an already-run event: no-op
    assert loop.pending() == 1
    other.cancel()
    assert loop.pending() == 0
    loop.run_until_quiescent()  # counter at zero -> quiescent


def test_quiescence_check_uses_counter():
    loop = EventLoop()
    event = loop.schedule(1.0, lambda: None)
    event.cancel()
    # a cancelled-but-still-heaped event must not block quiescence
    assert loop.run_until_quiescent() == 0
    assert loop.pending() == 0


def test_rng_is_seeded_and_deterministic():
    a = EventLoop(seed=42).rng.random()
    b = EventLoop(seed=42).rng.random()
    assert a == b


def test_max_events_budget():
    loop = EventLoop()
    out = []
    for i in range(10):
        loop.schedule(float(i), out.append, i)
    loop.run(max_events=3)
    assert out == [0, 1, 2]


# ----------------------------------------------------------------------
# schedule_at clamping and run(until=...)/advance() boundary behaviour
# ----------------------------------------------------------------------
def test_schedule_at_clamps_infinitesimal_negative_drift():
    """``(now + dt) - now`` is not always ``>= dt`` in binary floating
    point: re-scheduling at an absolute time computed from the current
    clock may land one ulp in the past and must not raise."""
    loop = EventLoop()
    # Put the clock on a value whose float neighbourhood is sparse
    # enough to exhibit drift.
    loop.schedule(0.1, lambda: None)
    loop.schedule(0.2, lambda: None)
    loop.run()
    now = loop.now
    drifted = now - 1e-12  # accumulated-rounding stand-in: when < now
    assert drifted < now
    fired = []
    loop.schedule_at(drifted, fired.append, "clamped")
    loop.run()
    assert fired == ["clamped"]
    assert loop.now == now  # clamped to the current instant, not moved


def test_schedule_at_accepts_when_equal_to_now_after_drift():
    loop = EventLoop()
    # Accumulate float drift the way a retransmission timer does:
    # many small increments that do not sum exactly.
    t = 0.0
    for _ in range(100):
        loop.schedule_at(t, lambda: None)
        loop.run()
        t = loop.now + 0.1
        loop.schedule_at(t, lambda: None)
        loop.run()
    event = loop.schedule_at(loop.now, lambda: None)  # when == now
    assert event.time == loop.now
    loop.run()


def test_schedule_at_rejects_genuinely_past_times():
    loop = EventLoop()
    loop.schedule(5.0, lambda: None)
    loop.run()
    with pytest.raises(ValueError):
        loop.schedule_at(4.0, lambda: None)


def test_schedule_at_tolerance_scales_with_large_clock():
    """At large simulated times one ulp is much bigger than at t=1;
    the clamp tolerance is relative, so drift keeps being absorbed."""
    loop = EventLoop()
    loop.schedule(1e9, lambda: None)
    loop.run()
    ulp = loop.now - (loop.now - 1e-3)  # well inside 1e-9 relative
    fired = []
    loop.schedule_at(loop.now - 1e-3, fired.append, "ok")
    loop.run()
    assert fired == ["ok"]
    assert ulp > 0


def test_run_until_executes_event_landing_exactly_on_boundary():
    loop = EventLoop()
    out = []
    loop.schedule(1.0, out.append, "on-boundary")
    loop.schedule(1.5, out.append, "beyond")
    assert loop.run(until=1.0) == 1
    assert out == ["on-boundary"]
    assert loop.now == 1.0
    assert loop.pending() == 1  # the 1.5s event survives, un-popped


def test_run_until_cancelled_event_at_heap_front_at_boundary():
    """A tombstone sitting exactly at ``until`` must be drained, the
    live event behind it run, and the clock left on the boundary."""
    loop = EventLoop()
    out = []
    doomed = loop.schedule(1.0, out.append, "cancelled", priority=-1)
    loop.schedule(1.0, out.append, "live")
    doomed.cancel()
    assert loop.run(until=1.0) == 1
    assert out == ["live"]
    assert loop.now == 1.0
    assert loop.pending() == 0


def test_run_until_only_cancelled_events_advances_clock_to_until():
    loop = EventLoop()
    for delay in (0.5, 1.0):
        loop.schedule(delay, lambda: None).cancel()
    assert loop.run(until=2.0) == 0
    assert loop.now == 2.0  # idle time still passes
    assert loop.pending() == 0


def test_run_max_events_with_only_cancelled_events_remaining():
    """Spending the budget must stop the run even when everything left
    in the heap is a tombstone; a later unbudgeted run drains them."""
    loop = EventLoop()
    out = []
    loop.schedule(1.0, out.append, "first")
    for delay in (2.0, 3.0):
        loop.schedule(delay, lambda: None).cancel()
    assert loop.run(max_events=1) == 1
    assert out == ["first"]
    assert loop.pending() == 0      # live counter sees through tombstones
    assert loop.run() == 0          # drains the cancelled tail
    assert loop.now == 1.0          # tombstones never advance the clock


def test_run_until_max_events_budget_stops_before_boundary():
    loop = EventLoop()
    out = []
    for i in range(4):
        loop.schedule(float(i + 1), out.append, i)
    assert loop.run(until=10.0, max_events=2) == 2
    assert out == [0, 1]
    assert loop.now == 2.0  # budget exhausted: clock stays put


def test_advance_lands_clock_exactly_even_when_idle():
    loop = EventLoop()
    assert loop.advance(0.25) == 0
    assert loop.now == 0.25
    out = []
    loop.schedule(0.25, out.append, "x")  # due exactly at the boundary
    assert loop.advance(0.25) == 1
    assert out == ["x"]
    assert loop.now == 0.5


def test_advance_with_cancelled_front_reaches_full_duration():
    loop = EventLoop()
    loop.schedule(0.1, lambda: None).cancel()
    out = []
    loop.schedule(0.2, out.append, "live")
    assert loop.advance(1.0) == 1
    assert out == ["live"]
    assert loop.now == 1.0
