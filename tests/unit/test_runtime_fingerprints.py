"""Pinned-fingerprint guard for the optimized runtime (PR 5).

The load-engine PR rewrote the scheduler's hot paths (localized heap
ops, slotted signals, dict-dispatch slot FSM, cached descriptor
encodings, the FIFO fast path).  None of that is allowed to change
*behavior*: the simulation must execute the same events in the same
order, draw the same random numbers, and emit byte-identical trace
exports.

``tests/unit/data/runtime_fingerprints.json`` pins, for every bundled
app in both faithful and faulted (``drop10+dup10`` + retransmission)
modes, the values recorded on the pre-optimization runtime:

- ``executed``     — ``net.loop.executed`` after the scenario
- ``emitted``      — events captured by the tracer
- ``sim_time``     — final simulation clock
- ``trace_sha256`` — sha256 of the canonical Chrome trace export

If an optimization changes any of these, it changed observable runtime
semantics and must be rejected (or, for an *intentional* semantic
change in a future PR, the fingerprints re-pinned with justification).
"""

from __future__ import annotations

import hashlib
import json
import os

import pytest

from repro.chaos.scenarios import SCENARIOS
from repro.network.faults import plan_by_name
from repro.network.network import Network
from repro.obs.export import dumps_chrome
from repro.obs.tracer import Tracer
from repro.protocol.slot import RetransmitPolicy

_DATA = os.path.join(os.path.dirname(__file__), "data",
                     "runtime_fingerprints.json")

with open(_DATA) as _fh:
    _PINNED = json.load(_fh)

_SEED = 7
_PLAN = _PINNED["plan"]


def _run(app: str, mode: str):
    tracer = Tracer()
    if mode == "faithful":
        net = Network(seed=_SEED, trace=tracer)
    else:
        net = Network(seed=_SEED, retransmit=RetransmitPolicy(),
                      faults=plan_by_name(_PLAN), trace=tracer)
    SCENARIOS[app](net)
    export = dumps_chrome(tracer, meta={
        "app": app, "seed": _SEED, "mode": mode})
    return {
        "executed": net.loop.executed,
        "emitted": len(tracer.events),
        "sim_time": net.loop.now,
        "trace_sha256": hashlib.sha256(export.encode()).hexdigest(),
    }


@pytest.mark.parametrize("key", sorted(_PINNED["fingerprints"]))
def test_runtime_fingerprint_is_unchanged(key):
    app, mode = key.split("@")
    expected = _PINNED["fingerprints"][key]
    actual = _run(app, mode)
    assert actual == expected, (
        "optimized runtime diverged from the pinned pre-optimization "
        "fingerprint for %s" % key)
