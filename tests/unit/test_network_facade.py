"""Unit tests for the Network facade, router, and analysis formulas."""

import pytest

from repro import AUDIO, Network
from repro.analysis import (compositional_path_latency, fig13_latency,
                            sip_common_latency, sip_glare_latency)
from repro.network.router import Router
from repro.protocol.errors import ConfigurationError


# ----------------------------------------------------------------------
# router
# ----------------------------------------------------------------------
def test_router_exact_match():
    router = Router()
    router.register("alice", "agent-a")
    assert router.resolve("alice") == "agent-a"


def test_router_longest_prefix():
    router = Router()
    router.register("tones", "generic")
    router.register("tones:busy", "busy-specific")
    assert router.resolve("tones:busy") == "busy-specific"
    assert router.resolve("tones:ringback") == "generic"


def test_router_unknown_address():
    router = Router()
    with pytest.raises(ConfigurationError):
        router.resolve("nobody")


def test_router_unregister():
    router = Router()
    router.register("x", "a")
    router.unregister("x")
    with pytest.raises(ConfigurationError):
        router.resolve("x")


# ----------------------------------------------------------------------
# network facade
# ----------------------------------------------------------------------
def test_devices_are_dialable_by_name():
    net = Network(seed=1)
    a = net.device("alice")
    b = net.device("bob", auto_accept=True)
    ch = net.dial(a, "bob")
    assert ch.responder_end.owner is b
    assert ch.target == "bob"


def test_dial_reaches_serving_box_not_device():
    net = Network(seed=1)
    box = net.box("pbx")
    net.router.register("A", box)
    caller = net.device("caller")
    ch = net.dial(caller, "A")
    assert ch.responder_end.owner is box


def test_agents_registry_and_defaults():
    net = Network(seed=1, cost=0.005)
    dev = net.device("d")
    box = net.box("b")
    assert net.agents["d"] is dev
    assert dev.node.cost == 0.005
    assert box.node.cost == 0.005


def test_run_advances_clock():
    net = Network(seed=1)
    net.run(5.0)
    assert net.now == 5.0


# ----------------------------------------------------------------------
# formulas (Sec. VIII-C / IX-B arithmetic)
# ----------------------------------------------------------------------
def test_paper_constants_give_paper_numbers():
    assert fig13_latency() * 1000 == pytest.approx(128.0)
    assert compositional_path_latency(2) * 1000 == pytest.approx(128.0)
    assert sip_glare_latency() * 1000 == pytest.approx(3560.0)
    assert sip_common_latency() * 1000 == pytest.approx(378.0)


def test_fig13_is_the_p2_case():
    # Fig. 13's p is "the path length minus 1, which is the maximum".
    assert fig13_latency(0.01, 0.002) == \
        compositional_path_latency(2, 0.01, 0.002)


def test_path_latency_requires_positive_hops():
    with pytest.raises(ValueError):
        compositional_path_latency(0)


def test_latency_monotone_in_path_length():
    values = [compositional_path_latency(p) for p in range(1, 9)]
    assert values == sorted(values)
    deltas = {round(b - a, 9) for a, b in zip(values, values[1:])}
    assert len(deltas) == 1  # exactly n + c per extra hop
