"""Tests for the chaos harness: runner convergence, the negative
control, plan resolution, and the CLI contract."""

import io
import json

import pytest

from repro.chaos import SCENARIOS, run_app, run_suite
from repro.chaos.cli import main as chaos_main
from repro.network.faults import PLANS, plan_by_name, scaled_plan
from repro.protocol.slot import RetransmitPolicy

ACCEPTANCE_PLAN = PLANS["drop10+dup10"]


def test_suite_covers_all_six_apps():
    assert sorted(SCENARIOS) == ["click_to_dial", "collab_tv",
                                 "conference", "features", "pbx",
                                 "prepaid"]


@pytest.mark.parametrize("app", sorted(SCENARIOS))
def test_app_converges_under_acceptance_plan(app):
    """≥10% drop plus duplication: the media plane ends up exactly
    where the fault-free run ends up."""
    result = run_app(app, ACCEPTANCE_PLAN, seed=7,
                     retransmit=RetransmitPolicy())
    assert result.error is None, result.error
    assert result.mismatches == []
    assert result.converged
    # the adversary really did something
    assert result.fault_stats["dropped"] + \
        result.fault_stats["duplicated"] > 0


def test_suite_converges_across_seeds():
    for seed in (1, 3):
        results = run_suite(plan=ACCEPTANCE_PLAN, seed=seed,
                            retransmit=RetransmitPolicy())
        assert all(r.converged for r in results), \
            [(r.app, r.error or r.mismatches) for r in results
             if not r.converged]


def test_heavier_plan_still_converges():
    results = run_suite(apps=["pbx", "conference"],
                        plan=PLANS["drop20+dup20"], seed=7,
                        retransmit=RetransmitPolicy())
    assert all(r.converged for r in results)


def test_negative_control_without_retransmission():
    """Strict slots with no robust mode: loss must break the run —
    the harness is actually measuring the retransmission machinery."""
    result = run_app("features", ACCEPTANCE_PLAN, seed=7,
                     retransmit=None)
    assert not result.converged
    assert result.error is not None or result.mismatches


def test_result_serializes_to_json():
    result = run_app("click_to_dial", ACCEPTANCE_PLAN, seed=7,
                     retransmit=RetransmitPolicy())
    payload = json.loads(json.dumps(result.to_json()))
    assert payload["app"] == "click_to_dial"
    assert payload["plan"]["name"] == "drop10+dup10"
    assert payload["converged"] is True
    assert set(payload["fault_stats"]) >= {"dropped", "duplicated"}


# ----------------------------------------------------------------------
# fault-plan vocabulary
# ----------------------------------------------------------------------
def test_plan_lookup_and_scaling():
    assert plan_by_name("flaky").flaps
    with pytest.raises(KeyError):
        plan_by_name("nonesuch")
    scaled = scaled_plan(PLANS["drop10+dup10"], 0.25)
    assert scaled.drop == 0.25
    assert scaled.duplicate == PLANS["drop10+dup10"].duplicate


# ----------------------------------------------------------------------
# the CLI contract
# ----------------------------------------------------------------------
def test_cli_converged_run_exits_zero(tmp_path):
    out = io.StringIO()
    bench = tmp_path / "bench.json"
    code = chaos_main(["--app", "click_to_dial", "--seed", "7",
                       "--bench-json", str(bench)], out=out)
    assert code == 0
    assert "converged" in out.getvalue()
    payload = json.loads(bench.read_text())
    assert payload["summary"]["all_converged"] is True
    assert payload["apps"]["click_to_dial"]["converged"] is True


def test_cli_json_report_on_stdout():
    out = io.StringIO()
    code = chaos_main(["--app", "features", "--json", "-"], out=out)
    assert code == 0
    payload = json.loads(out.getvalue())
    assert payload[0]["app"] == "features"
    assert payload[0]["converged"] is True


def test_cli_negative_control_exits_one():
    out = io.StringIO()
    code = chaos_main(["--app", "features", "--no-retransmit"], out=out)
    assert code == 1
    assert "DIVERGED" in out.getvalue()


def test_cli_list_plans():
    out = io.StringIO()
    assert chaos_main(["--list-plans"], out=out) == 0
    listing = out.getvalue()
    for name in PLANS:
        assert name in listing


def test_cli_rejects_unknown_plan_and_app():
    with pytest.raises(SystemExit) as exc:
        chaos_main(["--plan", "nonesuch"], out=io.StringIO())
    assert exc.value.code == 2
    with pytest.raises(SystemExit) as exc:
        chaos_main(["--app", "nonesuch"], out=io.StringIO())
    assert exc.value.code == 2


def test_cli_overrides_build_custom_plan():
    out = io.StringIO()
    code = chaos_main(["--app", "click_to_dial", "--drop", "0.15",
                       "--json", "-"], out=out)
    assert code == 0
    payload = json.loads(out.getvalue())
    assert payload[0]["plan"]["drop"] == 0.15
    assert payload[0]["plan"]["name"].endswith("+custom")
