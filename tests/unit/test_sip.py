"""Unit tests for the SIP substrate (offer/answer, transactions, glare,
third-party call control)."""

import pytest

from repro.network.address import Address
from repro.network.eventloop import EventLoop
from repro.network.latency import FixedLatency
from repro.protocol.codecs import G711, G726, G729
from repro.sip import (SipB2BUA, SipDialog, SipEndpointUA, SipError,
                       MediaDescription, SdpFactory, negotiate)


def make_endpoint(loop, name, host, codecs=(G711, G726)):
    return SipEndpointUA(loop, name, Address(host, 5004), codecs=codecs)


@pytest.fixture
def loop():
    return EventLoop(seed=5)


# ----------------------------------------------------------------------
# SDP negotiation
# ----------------------------------------------------------------------
def test_negotiate_intersection_in_offer_order():
    factory = SdpFactory("a")
    offer = factory.offer(Address("h", 1), (G729, G711, G726))
    assert negotiate(offer, (G726, G711)) == (G711, G726)


def test_answer_is_relative_to_offer():
    fa, fb = SdpFactory("a"), SdpFactory("b")
    offer = fa.offer(Address("h", 1), (G711, G726))
    answer = fb.answer(offer, Address("h2", 2), (G726,))
    assert answer.is_answer
    assert answer.relative_to == offer.version
    assert answer.codecs == (G726,)


def test_answer_none_when_no_common_codec():
    fa, fb = SdpFactory("a"), SdpFactory("b")
    offer = fa.offer(Address("h", 1), (G711,))
    assert fb.answer(offer, Address("h2", 2), (G729,)) is None


# ----------------------------------------------------------------------
# basic calls
# ----------------------------------------------------------------------
def test_direct_call_offer_answer(loop):
    a = make_endpoint(loop, "a", "10.0.0.1")
    b = make_endpoint(loop, "b", "10.0.0.2")
    dialog = SipDialog(loop, a, b, latency=FixedLatency(0.01))
    a.call(dialog.end_for(a))
    loop.run()
    assert a.target == b.address
    assert b.target == a.address


def test_overlapping_invites_on_one_dialog_forbidden(loop):
    a = make_endpoint(loop, "a", "10.0.0.1")
    b = make_endpoint(loop, "b", "10.0.0.2")
    dialog = SipDialog(loop, a, b)
    end = dialog.end_for(a)
    a.call(end)
    with pytest.raises(SipError):
        a.call(end)


def test_bye_puts_endpoint_on_hold(loop):
    a = make_endpoint(loop, "a", "10.0.0.1")
    b = make_endpoint(loop, "b", "10.0.0.2")
    dialog = SipDialog(loop, a, b, latency=FixedLatency(0.01))
    a.call(dialog.end_for(a))
    loop.run()
    a.send_bye(dialog.end_for(a))
    loop.run()
    assert b.target is None


# ----------------------------------------------------------------------
# third-party call control (RFC 3725 flow)
# ----------------------------------------------------------------------
@pytest.fixture
def tpcc(loop):
    """A -- server -- C, one B2BUA controlling both dialogs."""
    a = make_endpoint(loop, "A", "10.0.0.1")
    c = make_endpoint(loop, "C", "10.0.0.3")
    server = SipB2BUA(loop, "server")
    d_a = SipDialog(loop, server, a, latency=FixedLatency(0.01))
    d_c = SipDialog(loop, server, c, latency=FixedLatency(0.01))
    return loop, a, c, server, d_a, d_c


def test_b2bua_relink_connects_endpoints(tpcc):
    loop, a, c, server, d_a, d_c = tpcc
    op = server.relink(d_a.end_for(server), d_c.end_for(server))
    loop.run()
    assert op.done
    assert op.attempts == 1
    assert a.target == c.address
    assert c.target == a.address


def test_b2bua_chain_relays_through_middle(loop):
    """A -- pbx -- pc -- C: pc relinks C toward A through the pbx."""
    a = make_endpoint(loop, "A", "10.0.0.1")
    c = make_endpoint(loop, "C", "10.0.0.3")
    pbx = SipB2BUA(loop, "pbx")
    pc = SipB2BUA(loop, "pc")
    d_a = SipDialog(loop, pbx, a, latency=FixedLatency(0.01))
    mid = SipDialog(loop, pc, pbx, latency=FixedLatency(0.01))
    d_c = SipDialog(loop, pc, c, latency=FixedLatency(0.01))
    pbx.set_route(mid.end_for(pbx), d_a.end_for(pbx))
    op = pc.relink(d_c.end_for(pc), mid.end_for(pc))
    loop.run()
    assert op.done
    assert a.target == c.address
    assert c.target == a.address


def test_concurrent_relinks_glare_and_recover(loop):
    """The Fig. 14 scenario: both servers start relinks concurrently on
    the shared middle dialog; both 491, both back off, and the retries
    converge."""
    a = make_endpoint(loop, "A", "10.0.0.1")
    c = make_endpoint(loop, "C", "10.0.0.3")
    pbx = SipB2BUA(loop, "pbx")
    pc = SipB2BUA(loop, "pc")
    d_a = SipDialog(loop, pbx, a, latency=FixedLatency(0.01))
    mid = SipDialog(loop, pc, pbx, latency=FixedLatency(0.01))  # pc owns
    d_c = SipDialog(loop, pc, c, latency=FixedLatency(0.01))
    op_pc = pc.relink(d_c.end_for(pc), mid.end_for(pc))
    op_pbx = pbx.relink(d_a.end_for(pbx), mid.end_for(pbx))
    loop.run()
    assert op_pc.done and op_pbx.done
    assert op_pc.glares >= 1 and op_pbx.glares >= 1
    assert a.target == c.address
    assert c.target == a.address
    # The glare cost simulated time: at least the shorter retry window.
    assert max(op_pc.latency, op_pbx.latency) > 1.0


def test_glare_holds_media_during_recovery(loop):
    a = make_endpoint(loop, "A", "10.0.0.1")
    c = make_endpoint(loop, "C", "10.0.0.3")
    pbx = SipB2BUA(loop, "pbx")
    pc = SipB2BUA(loop, "pc")
    d_a = SipDialog(loop, pbx, a, latency=FixedLatency(0.01))
    mid = SipDialog(loop, pc, pbx, latency=FixedLatency(0.01))
    d_c = SipDialog(loop, pc, c, latency=FixedLatency(0.01))
    pc.relink(d_c.end_for(pc), mid.end_for(pc))
    pbx.relink(d_a.end_for(pbx), mid.end_for(pbx))
    loop.run(until=0.5)  # after the glare, before any retry completes
    # The dummy answers closed the solicited transactions with "hold".
    assert c.target is None
    assert a.target is None
    loop.run()
    assert a.target == c.address and c.target == a.address


def test_retry_windows_follow_dialog_ownership(loop):
    mid_owner_window = None
    a = make_endpoint(loop, "A", "10.0.0.1")
    pbx = SipB2BUA(loop, "pbx")
    mid = SipDialog(loop, pbx, a)
    assert mid.end_for(pbx).retry_window() == (2.1, 4.0)   # owner
    assert mid.end_for(a).retry_window() == (0.0, 2.0)     # non-owner
