"""Tests for the PR-6 object arenas: the per-link :class:`Event`
freelist, the per-node recycled stimulus event, and the per-loop
:class:`TunnelMessage` envelope pool.

Each arena has an explicit reset contract (fresh ``seq`` on event
reuse, ``signal=None`` on pooled envelopes); these tests pin it.  They
run identically under both backends.
"""

from __future__ import annotations

from repro.chaos.scenarios import SCENARIOS
from repro.network.eventloop import EventLoop
from repro.network.latency import FixedLatency
from repro.network.network import Network
from repro.network.node import Node
from repro.network.transport import _FREELIST_MAX, _PENDING_COMPACT, Link


def _linked_loop():
    loop = EventLoop(seed=0)
    link = Link(loop, latency=FixedLatency(0.0))
    received = []
    link.ends[1].set_receiver(received.append)
    link.ends[0].set_receiver(lambda m: None)
    return loop, link, received


def test_link_freelist_harvests_fired_events():
    loop, link, received = _linked_loop()
    # Fire enough deliveries for _pending to hit the compaction
    # threshold; the fired events must land on the freelist.
    for i in range(_PENDING_COMPACT + 4):
        link.ends[0].send(i)
        loop.run()
    assert received == list(range(_PENDING_COMPACT + 4))
    assert link._free, "compaction harvested no fired events"
    assert all(e._loop is None and not e.cancelled for e in link._free)


def test_link_freelist_reuses_an_event_with_a_fresh_seq():
    loop, link, received = _linked_loop()
    for i in range(_PENDING_COMPACT + 4):
        link.ends[0].send(i)
        loop.run()
    recycled = link._free[-1]
    old_seq = recycled.seq
    link.ends[0].send("again")
    assert link._pending[-1] is recycled      # re-armed in place
    assert recycled._loop is loop
    assert recycled.seq > old_seq             # fresh seq: same order as
    loop.run()                                # a fresh allocation
    assert received[-1] == "again"


def test_link_freelist_never_recycles_cancelled_events():
    loop, link, _ = _linked_loop()
    link.ends[0].send("doomed")
    doomed = link._pending[-1]
    doomed.cancel()
    link._compact_pending()
    assert doomed not in link._free
    loop.run()


def test_link_freelist_is_bounded():
    loop, link, _ = _linked_loop()
    for i in range(_FREELIST_MAX * 4):
        link.ends[0].send(i)
        loop.run()
    assert len(link._free) <= _FREELIST_MAX


def test_torn_down_link_cancels_its_freelist_nothing():
    # tear_down cancels in-flight events; the freelist is per-link, so
    # another link's recycled events are never touched.
    loop = EventLoop(seed=0)
    a = Link(loop, latency=FixedLatency(0.0))
    b = Link(loop, latency=FixedLatency(0.0))
    for link in (a, b):
        link.ends[1].set_receiver(lambda m: None)
    for i in range(_PENDING_COMPACT + 4):
        a.ends[0].send(i)
        b.ends[0].send(i)
        loop.run()
    b.ends[0].send("in-flight-b")
    survivor = b._pending[-1]
    a.tear_down()
    assert not survivor.cancelled
    loop.run()


def test_node_recycles_its_stimulus_event():
    loop = EventLoop(seed=0)
    node = Node(loop, cost=0.0)
    out = []
    node.enqueue(out.append, 1)
    loop.run()
    first = node._stim_event
    assert first is not None and first._loop is None
    old_seq = first.seq
    node.enqueue(out.append, 2)
    assert node._stim_event is first          # re-armed, not replaced
    assert first.seq > old_seq
    loop.run()
    assert out == [1, 2]
    assert node.handled == 2


def test_node_costed_stimuli_still_recycle():
    loop = EventLoop(seed=0)
    node = Node(loop, cost=0.5)
    out = []
    node.enqueue(out.append, "a")
    node.enqueue(out.append, "b")
    loop.run()
    assert out == ["a", "b"]
    assert loop.now == 1.0                    # two costed stimuli


def test_envelope_pool_reset_contract():
    # Drive a real scenario; every envelope parked in the loop's pool
    # must be reset (signal dropped, pooled flag set) and the pool
    # bounded.
    net = Network(seed=0)
    SCENARIOS["pbx"](net)
    pool = net.loop._env_pool
    assert pool, "scenario recycled no envelopes"
    assert len(pool) <= 64
    for env in pool:
        assert env.pooled is True
        assert env.signal is None


def test_envelope_pool_not_used_on_hooked_links():
    # A transmit hook may retain or duplicate the message, so hooked
    # sends must use fresh (non-pooled) envelopes.  Faulted scenarios
    # install drop/dup hooks on every inter-component link.
    from repro.network.faults import plan_by_name
    from repro.protocol.slot import RetransmitPolicy
    net = Network(seed=0, retransmit=RetransmitPolicy(),
                  faults=plan_by_name("drop10+dup10"))
    SCENARIOS["pbx"](net)
    # Zero-latency in-box links are hook-free and still pool; the
    # invariant is that nothing *delivered through a hook* was pooled,
    # which the fingerprint parity suite enforces end-to-end.  Here we
    # just require the reset contract to hold for whatever was pooled.
    for env in net.loop._env_pool:
        assert env.pooled is True
        assert env.signal is None
