"""Backend seam tests: selection, fallback, and cross-backend parity.

The backend is chosen once at import time, so every selection test runs
in a child interpreter with a controlled ``REPRO_BACKEND``.  The parity
test computes the full runtime-fingerprint set under *both* backends in
child processes and requires byte-identical results — the compiled core
is only allowed to be faster, never different.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.network.backend import compiled_available

_SRC = os.path.normpath(os.path.join(
    os.path.dirname(__file__), "..", "..", "src"))


def _probe(code: str, backend_env=None) -> str:
    """Run ``code`` in a child interpreter; returns its stdout."""
    env = {k: v for k, v in os.environ.items() if k != "REPRO_BACKEND"}
    if backend_env is not None:
        env["REPRO_BACKEND"] = backend_env
    env["PYTHONPATH"] = _SRC
    proc = subprocess.run([sys.executable, "-c", textwrap.dedent(code)],
                          env=env, capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout.strip()


def _describe(backend_env=None) -> dict:
    return json.loads(_probe(
        """
        import json
        from repro.network import backend
        print(json.dumps(backend.describe()))
        """, backend_env))


def test_default_backend_is_python():
    info = _describe(None)
    assert info == {"backend": "python", "requested": "python",
                    "compiled_loaded": False, "arena_poison": False}


def test_explicit_python_never_loads_the_extension():
    info = _describe("python")
    assert info["backend"] == "python"
    assert info["compiled_loaded"] is False


def test_unknown_backend_value_degrades_to_python():
    info = _describe("turbo9000")
    assert info["backend"] == "python"
    assert info["requested"] == "python"


def test_backend_env_value_is_normalized():
    info = _describe("  Python \n")
    assert info["requested"] == "python"


def test_compiled_falls_back_without_artifact():
    # Block the extension import (as on a fresh checkout with no build)
    # and ask for the compiled backend: the import chain must survive
    # and land on pure Python.  An explicit ``compiled`` ask that
    # degrades is visible: a one-time RuntimeWarning on stderr.
    env = {k: v for k, v in os.environ.items() if k != "REPRO_BACKEND"}
    env["REPRO_BACKEND"] = "compiled"
    env["PYTHONPATH"] = _SRC
    proc = subprocess.run(
        [sys.executable, "-c", textwrap.dedent(
            """
            import sys
            sys.modules["repro.network._ccore"] = None  # -> ImportError
            from repro.network import backend
            assert backend.BACKEND == "python", backend.describe()
            assert backend.CORE is None
            assert backend.BACKEND_REQUESTED == "compiled"
            print("fallback-ok")
            """)],
        env=env, capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "fallback-ok"
    assert "RuntimeWarning" in proc.stderr
    assert "no compiled artifact is importable" in proc.stderr


def test_auto_falls_back_silently_without_artifact():
    # ``auto`` is opportunistic: the same degradation stays silent.
    env = {k: v for k, v in os.environ.items() if k != "REPRO_BACKEND"}
    env["REPRO_BACKEND"] = "auto"
    env["PYTHONPATH"] = _SRC
    proc = subprocess.run(
        [sys.executable, "-c", textwrap.dedent(
            """
            import sys
            sys.modules["repro.network._ccore"] = None  # -> ImportError
            from repro.network import backend
            assert backend.BACKEND == "python", backend.describe()
            print("auto-ok")
            """)],
        env=env, capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "auto-ok"
    assert "RuntimeWarning" not in proc.stderr


def test_unknown_backend_value_warns_once():
    env = {k: v for k, v in os.environ.items() if k != "REPRO_BACKEND"}
    env["REPRO_BACKEND"] = "turbo9000"
    env["PYTHONPATH"] = _SRC
    proc = subprocess.run(
        [sys.executable, "-c",
         "from repro.network import backend; print(backend.BACKEND)"],
        env=env, capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "python"
    assert proc.stderr.count("unknown REPRO_BACKEND value 'turbo9000'") == 1


def test_arena_poison_env_is_surfaced():
    env = {k: v for k, v in os.environ.items()
           if k not in ("REPRO_BACKEND", "REPRO_ARENA_POISON")}
    env["REPRO_ARENA_POISON"] = "1"
    env["PYTHONPATH"] = _SRC
    proc = subprocess.run(
        [sys.executable, "-c",
         "import json; from repro.network import backend; "
         "print(json.dumps(backend.describe()))"],
        env=env, capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr
    assert json.loads(proc.stdout)["arena_poison"] is True


def test_stale_abi_artifact_is_rejected():
    # An artifact built against older kernel contracts must not
    # half-load; the seam checks ABI_VERSION before adopting it.
    out = _probe(
        """
        import sys, types
        fake = types.ModuleType("repro.network._ccore")
        fake.ABI_VERSION = 999
        sys.modules["repro.network._ccore"] = fake
        from repro.network import backend
        assert backend.BACKEND == "python", backend.describe()
        assert backend.CORE is None
        print("abi-gate-ok")
        """, "compiled")
    assert out == "abi-gate-ok"


@pytest.mark.skipif(not compiled_available(),
                    reason="compiled backend not built "
                           "(python tools/build_backend.py)")
def test_compiled_backend_selected_when_requested():
    for env in ("compiled", "auto"):
        info = _describe(env)
        assert info["backend"] == "compiled", info
        assert info["compiled_loaded"] is True


@pytest.mark.skipif(not compiled_available(),
                    reason="compiled backend not built "
                           "(python tools/build_backend.py)")
def test_compiled_event_type_is_the_c_type():
    out = _probe(
        """
        from repro.network import backend
        from repro.network.eventloop import Event
        assert Event is backend.CORE.Event
        e = Event(1.5, 0, 7, print, ("x",), None)
        assert (e.time, e.priority, e.seq) == (1.5, 0, 7)
        assert not e.cancelled
        e.cancel(); e.cancel()  # idempotent
        assert e.cancelled
        print("ctype-ok")
        """, "compiled")
    assert out == "ctype-ok"


# ---------------------------------------------------------------------------
# cross-backend parity: the whole fingerprint matrix, both backends
# ---------------------------------------------------------------------------

_FINGERPRINT_CODE = """
import hashlib, json
from repro.chaos.scenarios import SCENARIOS
from repro.network import backend
from repro.network.faults import plan_by_name
from repro.network.network import Network
from repro.obs.export import dumps_chrome
from repro.obs.tracer import Tracer
from repro.protocol.slot import RetransmitPolicy

out = {"backend": backend.BACKEND}
for app in sorted(SCENARIOS):
    for mode in ("faithful", "faulted"):
        tracer = Tracer()
        if mode == "faithful":
            net = Network(seed=7, trace=tracer)
        else:
            net = Network(seed=7, retransmit=RetransmitPolicy(),
                          faults=plan_by_name("drop10+dup10"),
                          trace=tracer)
        SCENARIOS[app](net)
        export = dumps_chrome(tracer, meta={"app": app, "seed": 7,
                                            "mode": mode})
        out["%s@%s" % (app, mode)] = {
            "executed": net.loop.executed,
            "emitted": len(tracer.events),
            "sim_time": net.loop.now,
            "trace_sha256":
                hashlib.sha256(export.encode()).hexdigest(),
        }
print(json.dumps(out, sort_keys=True))
"""


@pytest.mark.skipif(not compiled_available(),
                    reason="compiled backend not built "
                           "(python tools/build_backend.py)")
def test_fingerprints_identical_across_backends():
    """Every bundled app, faithful and faulted, must produce the same
    executed-event count, trace volume, final clock, and byte-identical
    trace export under both backends."""
    py = json.loads(_probe(_FINGERPRINT_CODE, "python"))
    cc = json.loads(_probe(_FINGERPRINT_CODE, "compiled"))
    assert py.pop("backend") == "python"
    assert cc.pop("backend") == "compiled"
    assert set(py) == set(cc) and len(py) == 12
    for key in sorted(py):
        assert py[key] == cc[key], (
            "backend divergence on %s:\npython:   %r\ncompiled: %r"
            % (key, py[key], cc[key]))


# ---------------------------------------------------------------------------
# slot FSM fast path: engagement on the clean configuration, fallback
# (with byte-identical observables) on everything outside it
# ---------------------------------------------------------------------------

#: Relay scenario with counting wrappers over the reference dispatch
#: table.  The compiled FSM kernels never consult ``_DISPATCH`` — they
#: are a C switch — so the counter reads exactly the receives that took
#: the Python path.
_FALLBACK_CODE = """
import hashlib, json
import repro.protocol.slot as slotmod

hits = {"dispatched": 0}
for _state, _fn in list(slotmod._DISPATCH.items()):
    def _wrap(fn):
        def counting(self, sig):
            hits["dispatched"] += 1
            return fn(self, sig)
        return counting
    slotmod._DISPATCH[_state] = _wrap(_fn)

from repro.core.admission import AdmissionPolicy
from repro.network.faults import plan_by_name
from repro.network.network import Network
from repro.obs.export import dumps_chrome
from repro.obs.tracer import Tracer
from repro.protocol.codecs import AUDIO
from repro.protocol.slot import RetransmitPolicy

scenario = %r
tracer = None
kwargs = dict(seed=3)
if scenario == "traced":
    tracer = Tracer()
    kwargs["trace"] = tracer
elif scenario == "faulted":
    kwargs.update(retransmit=RetransmitPolicy(),
                  faults=plan_by_name("drop10+dup10"))
elif scenario == "busy-refused":
    kwargs.update(retransmit=RetransmitPolicy(
        initial=0.25, backoff=2.0, max_retries=3, stale_after=0.5))

net = Network(**kwargs)
core = net.box("core")
if scenario == "busy-refused":
    core.set_admission(AdmissionPolicy(max_concurrent=1))
sides = []
for i in range(2):
    caller = net.device("a%%d" %% i)
    callee = net.device("b%%d" %% i, auto_accept=True)
    ch_in = net.channel(caller, core)
    ch_out = net.channel(core, callee)
    core.flow_link(ch_in.end_for(core).slot(),
                   ch_out.end_for(core).slot())
    sides.append((caller, ch_in.end_for(caller).slot()))

(a0, s0), (a1, s1) = sides
for _ in range(3):
    a0.open(s0, AUDIO)
    net.settle()
    a1.open(s1, AUDIO)     # busy-refused while s0 holds the one seat
    net.run(0.1)
    a0.close(s0)
    net.run(10.0)          # the backoff retry wins the freed seat
    a1.close(s1)
    net.settle()

out = {
    "dispatched": hits["dispatched"],
    "executed": net.loop.executed,
    "now": net.loop.now,
    "received": s0.signals_received + s1.signals_received,
    "busy_refusals": s1.busy_refusals,
}
if tracer is not None:
    out["trace_sha"] = hashlib.sha256(
        dumps_chrome(tracer, meta={}).encode()).hexdigest()
print(json.dumps(out, sort_keys=True))
"""


def _fallback_run(scenario: str, backend: str, extra_env=None) -> dict:
    env = {k: v for k, v in os.environ.items()
           if k not in ("REPRO_BACKEND", "REPRO_ARENA_POISON")}
    env["REPRO_BACKEND"] = backend
    env["PYTHONPATH"] = _SRC
    if extra_env:
        env.update(extra_env)
    proc = subprocess.run(
        [sys.executable, "-c",
         textwrap.dedent(_FALLBACK_CODE % scenario)],
        env=env, capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


@pytest.mark.skipif(not compiled_available(),
                    reason="compiled backend not built "
                           "(python tools/build_backend.py)")
def test_clean_configuration_never_enters_python_dispatch():
    """The control: untraced, reliable, strict, unpoisoned — the C FSM
    must execute *every* receive, or the fast path quietly rotted."""
    cc = _fallback_run("clean", "compiled")
    py = _fallback_run("clean", "python")
    assert cc["dispatched"] == 0, cc
    assert py["dispatched"] > 0
    for key in ("executed", "now", "received", "busy_refusals"):
        assert cc[key] == py[key], key


@pytest.mark.skipif(not compiled_available(),
                    reason="compiled backend not built "
                           "(python tools/build_backend.py)")
@pytest.mark.parametrize("scenario,extra_env", [
    ("traced", None),
    ("faulted", None),
    ("busy-refused", None),
    ("poisoned", {"REPRO_ARENA_POISON": "1"}),
])
def test_fallback_configurations_take_the_python_path(scenario, extra_env):
    """Traced loops, robust (faulted / busy-retry) slots, and
    arena-poisoned runs must route every receive through the reference
    handlers — and produce byte-identical observables to the pure
    Python backend doing the same."""
    cc = _fallback_run(scenario, "compiled", extra_env)
    py = _fallback_run(scenario, "python", extra_env)
    # Every receive outside the clean configuration falls back, so the
    # Python dispatch table sees the same traffic under both backends.
    assert cc.pop("dispatched") == py.pop("dispatched") > 0
    assert cc == py, (
        "fallback divergence on %s:\npython:   %r\ncompiled: %r"
        % (scenario, py, cc))
