"""Unit tests for media endpoints, devices, and the media plane."""

import pytest

from repro import AUDIO, G711, G726, Network
from repro.protocol.codecs import G729


@pytest.fixture
def call():
    """Two devices, direct channel, call established."""
    net = Network(seed=11)
    a = net.device("alice")
    b = net.device("bob", auto_accept=True)
    ch = net.channel(a, b)
    slot_a = ch.end_for(a).slot()
    a.open(slot_a, AUDIO)
    net.settle()
    return net, a, b, slot_a, ch.end_for(b).slot()


def test_direct_call_two_way_media(call):
    net, a, b, sa, sb = call
    assert sa.is_flowing and sb.is_flowing
    assert net.plane.two_way(a, b)


def test_manual_accept_rings_first():
    net = Network(seed=11)
    a = net.device("alice")
    b = net.device("bob")
    ch = net.channel(a, b)
    a.open(ch.end_for(a).slot(), AUDIO)
    net.settle()
    assert len(b.ringing()) == 1
    assert b.ring_log
    b.answer()
    net.settle()
    assert net.plane.two_way(a, b)


def test_decline_closes_channel():
    net = Network(seed=11)
    a = net.device("alice")
    b = net.device("bob")
    ch = net.channel(a, b)
    sa = ch.end_for(a).slot()
    a.open(sa, AUDIO)
    net.settle()
    b.decline()
    net.settle()
    assert sa.is_closed
    assert net.plane.silent(a) and net.plane.silent(b)


def test_codec_negotiated_by_receiver_priority():
    net = Network(seed=11)
    # bob prefers G.726; alice can send anything.
    a = net.device("alice")
    b = net.device("bob", auto_accept=True,
                   codecs={AUDIO: (G726, G711)})
    ch = net.channel(a, b)
    sa = ch.end_for(a).slot()
    a.open(sa, AUDIO)
    net.settle()
    # alice sends toward bob with bob's top codec.
    tx = [t for t in net.plane.transmissions()
          if t.port.endpoint is a][0]
    assert tx.codec is G726
    # bob sends toward alice with alice's top preference (full list).
    tx_b = [t for t in net.plane.transmissions()
            if t.port.endpoint is b][0]
    assert tx_b.codec.is_real


def test_asymmetric_codecs_per_direction():
    # "it is not necessary for the two directions of a channel to use
    # the same codec" (Sec. VI-A).
    net = Network(seed=11)
    a = net.device("alice", auto_accept=True, codecs={AUDIO: (G711, G729)})
    b = net.device("bob", auto_accept=True, codecs={AUDIO: (G729, G711)})
    ch = net.channel(a, b)
    b_slot = ch.end_for(b).slot()
    b.open(b_slot, AUDIO)
    net.settle()
    tx_a = [t for t in net.plane.transmissions() if t.port.endpoint is a][0]
    tx_b = [t for t in net.plane.transmissions() if t.port.endpoint is b][0]
    assert tx_a.codec is G729   # toward bob, bob's preference
    assert tx_b.codec is G711   # toward alice, alice's only codec
    assert tx_a.codec is not tx_b.codec


def test_open_with_mute_out(call=None):
    net = Network(seed=11)
    a = net.device("alice")
    b = net.device("bob", auto_accept=True)
    ch = net.channel(a, b)
    sa = ch.end_for(a).slot()
    a.open(sa, AUDIO, mute_out=True)
    net.settle()
    assert net.plane.flow_exists(b, a)
    assert not net.plane.flow_exists(a, b)


def test_open_with_mute_in_sends_no_media_descriptor():
    net = Network(seed=11)
    a = net.device("alice")
    b = net.device("bob", auto_accept=True)
    ch = net.channel(a, b)
    sa = ch.end_for(a).slot()
    a.open(sa, AUDIO, mute_in=True)
    net.settle()
    assert not net.plane.flow_exists(b, a)
    assert net.plane.flow_exists(a, b)


def test_modify_cycle_restores_flow(call):
    net, a, b, sa, sb = call
    a.modify(sa, mute_in=True, mute_out=True)
    net.settle()
    assert net.plane.silent(a)
    a.modify(sa, mute_in=False, mute_out=False)
    net.settle()
    assert net.plane.two_way(a, b)


def test_hangup_stops_media_both_ways(call):
    net, a, b, sa, sb = call
    a.close(sa)
    net.settle()
    assert sa.is_closed and sb.is_closed
    assert net.plane.silent(a) and net.plane.silent(b)
    assert net.plane.wasted_transmissions() == []


def test_refresh_descriptor_keeps_flow(call):
    net, a, b, sa, sb = call
    a.refresh_descriptor(sa)
    net.settle()
    assert net.plane.two_way(a, b)


def test_enabled_history_variable(call):
    net, a, b, sa, sb = call
    assert a.enabled_out(sa)
    a.modify(sa, mute_out=True)
    net.settle()
    assert not a.enabled_out(sa)


def test_wasted_transmission_detection():
    """Force the Fig. 2 style failure artificially: a receiver stops
    listening while the sender keeps transmitting."""
    net = Network(seed=11)
    a = net.device("alice")
    b = net.device("bob", auto_accept=True)
    ch = net.channel(a, b)
    sa = ch.end_for(a).slot()
    a.open(sa, AUDIO)
    net.settle()
    # bob's port deregisters (simulates the endpoint moving on) without
    # alice being told.
    port_b = b.ports()[0]
    net.plane.unregister_port(port_b)
    wasted = net.plane.wasted_transmissions()
    assert any(tx.port.endpoint is a for tx in wasted)


def test_heard_by_labels(call):
    net, a, b, sa, sb = call
    assert "audio:alice" in net.plane.heard_by(b)
    assert "audio:bob" in net.plane.heard_by(a)


def test_port_listening_follows_descriptor(call):
    net, a, b, sa, sb = call
    port_a = a.ports()[0]
    assert port_a.listening
    a.modify(sa, mute_in=True)
    net.settle()
    assert not port_a.listening


def test_hang_up_all(call):
    net, a, b, sa, sb = call
    a.hang_up_all()
    net.settle()
    assert all(p.slot.is_closed for p in a.ports())
