"""Unit tests for strict address parsing and the structured
:class:`AddressError` the live transport depends on."""

import pytest

from repro.network.address import (Address, AddressAllocator, AddressError,
                                   parse_hostport)


# ----------------------------------------------------------------------
# parse_hostport: the happy path
# ----------------------------------------------------------------------
@pytest.mark.parametrize("text,expected", [
    ("127.0.0.1:8080", ("127.0.0.1", 8080)),
    ("localhost:1", ("localhost", 1)),
    ("some-box_3.example:65535", ("some-box_3.example", 65535)),
])
def test_parse_valid(text, expected):
    assert parse_hostport(text) == expected


def test_address_parse_and_str_roundtrip():
    address = Address.parse("10.0.0.7:10002")
    assert address == Address("10.0.0.7", 10002)
    assert Address.parse(str(address)) == address


# ----------------------------------------------------------------------
# parse_hostport: every rejection carries a stable reason slug
# ----------------------------------------------------------------------
@pytest.mark.parametrize("text,reason", [
    (12345, "not-a-string"),
    (None, "not-a-string"),
    ("nohost", "missing-port"),
    ("a:b:80", "extra-colon"),
    (":80", "empty-host"),
    ("host:", "bad-port"),
    ("host:eighty", "bad-port"),
    ("host:-1", "bad-port"),
    ("host:0", "port-out-of-range"),
    ("host:65536", "port-out-of-range"),
    ("bad host:80", "bad-host-char"),
    ("host%00:80", "bad-host-char"),
    ("-host:80", "bad-host-start"),
    (".host:80", "bad-host-start"),
    ("h" * 300 + ":80", "too-long"),
])
def test_parse_rejects_with_reason(text, reason):
    with pytest.raises(AddressError) as err:
        parse_hostport(text)
    assert err.value.reason == reason


def test_address_error_is_a_value_error():
    # Legacy ``except ValueError`` call sites must keep working.
    with pytest.raises(ValueError):
        parse_hostport("nope")


def test_error_message_names_text_and_reason():
    with pytest.raises(AddressError) as err:
        parse_hostport("x y:80")
    assert "x y:80" in str(err.value)
    assert "bad-host-char" in str(err.value)


# ----------------------------------------------------------------------
# Address.validate: re-checking wire-decoded fields
# ----------------------------------------------------------------------
def test_validate_accepts_good_address():
    address = Address("10.1.2.3", 10000)
    assert address.validate() is address


@pytest.mark.parametrize("host,port,reason", [
    ("", 80, "empty-host"),
    ("bad host", 80, "bad-host-char"),
    ("h" * 300, 80, "host-too-long"),
    ("ok", 0, "port-out-of-range"),
    ("ok", 70000, "port-out-of-range"),
    ("ok", True, "bad-port"),   # bool sneaking through an int field
    ("ok", "80", "bad-port"),
])
def test_validate_rejects_bad_fields(host, port, reason):
    with pytest.raises(AddressError) as err:
        Address(host, port).validate()
    assert err.value.reason == reason


# ----------------------------------------------------------------------
# the allocator (unchanged semantics the tests pin)
# ----------------------------------------------------------------------
def test_allocator_hands_out_unique_even_ports_per_host():
    allocator = AddressAllocator()
    addresses = list(allocator.allocate_many("10.0.0.1", 5))
    assert [a.port for a in addresses] == [10000, 10002, 10004,
                                           10006, 10008]
    assert allocator.allocate("10.0.0.2").port == 10000
    assert all(a.validate() for a in addresses)


def test_allocator_hosts_stay_below_live_half_space():
    from repro.livenet.journal import host_for
    allocator = AddressAllocator()
    hosts = {allocator.host() for _ in range(300)}
    # Sequential hosts live in 10.0/9; name-derived live hosts in
    # 10.128/9 — the two can never collide.
    assert all(int(h.split(".")[1]) < 128 for h in hosts)
    assert int(host_for("anyone").split(".")[1]) >= 128
