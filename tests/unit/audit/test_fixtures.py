"""Every RC8xx code fires on its deliberately-broken fixture, at the
expected location — the auditor's negative controls."""

import pytest

from repro.audit import AUDIT_CODES
from repro.audit.fixtures import all_audit_fixtures

FIXTURES = all_audit_fixtures()


def test_every_code_has_a_fixture():
    # At least one negative control per code; parity codes carry one
    # extra control per dual-implemented surface class (arena caps,
    # runtime symbol lookups, interned names grew with the C FSM /
    # goal-dispatch / batched-delivery kernels).
    covered = {f.code for f in FIXTURES}
    assert covered == set(AUDIT_CODES)


def test_fixture_names_are_unique():
    names = [f.name for f in FIXTURES]
    assert len(names) == len(set(names))


@pytest.mark.parametrize("fixture", FIXTURES,
                         ids=[f.name for f in FIXTURES])
def test_fixture_triggers_its_code(fixture):
    found = fixture.run()
    assert any(fixture.matches(d) for d in found), (
        "%s did not produce %s at state=%r; got %s"
        % (fixture.name, fixture.code, fixture.state,
           [d.format() for d in found]))


@pytest.mark.parametrize("fixture", FIXTURES,
                         ids=[f.name for f in FIXTURES])
def test_fixture_diagnostics_render(fixture):
    for diagnostic in fixture.run():
        assert diagnostic.code in AUDIT_CODES
        assert diagnostic.severity in ("error", "warning")
        assert diagnostic.format()


def test_parity_fixture_anchors_track_the_real_source():
    """A doctored-C fixture whose anchor text vanished from _ccore.c
    must fail loudly, not silently audit the clean file."""
    from repro.audit.fixtures import _doctored_c
    run = _doctored_c("this text is not in the C source", "x")
    with pytest.raises(AssertionError, match="anchor"):
        run()
