"""Per-rule behavior of the audit passes: each determinism/arena rule
fires on its minimal trigger and stays quiet on the idiomatic legal
form, and the shipped runtime comes back clean from all three static
passes."""

import textwrap

from repro.audit.arenas import (check_arenas, check_c_contracts,
                                check_module_source)
from repro.audit.determinism import check_source, subpackage_of
from repro.audit.parity import check_parity
from repro.audit.surface import c_source_path


def _codes(diagnostics):
    return {d.code for d in diagnostics}


def _det(source):
    return _codes(check_source("probe.py", textwrap.dedent(source)))


def _arena(source):
    return _codes(check_module_source("probe.py",
                                      textwrap.dedent(source)))


# ----------------------------------------------------------------------
# pass 1: the shipped repo self-hosts clean
# ----------------------------------------------------------------------
def test_shipped_parity_is_clean():
    assert check_parity() == []


def test_shipped_arenas_are_clean():
    assert check_arenas() == []


def test_shipped_c_contracts_hold():
    with open(c_source_path(), encoding="utf-8") as fh:
        assert check_c_contracts(fh.read()) == []


# ----------------------------------------------------------------------
# pass 2: determinism rules, trigger vs legal form
# ----------------------------------------------------------------------
def test_rc810_wall_clock():
    assert "RC810" in _det("""\
        import time
        def f():
            return time.perf_counter()
        """)


def test_rc810_quiet_on_sim_clock():
    assert "RC810" not in _det("""\
        def f(loop):
            return loop.now
        """)


def test_rc810_from_import():
    assert "RC810" in _det("""\
        from time import monotonic
        def f():
            return monotonic()
        """)


def test_rc811_unseeded_random():
    assert "RC811" in _det("""\
        import random
        def f():
            return random.choice("ab")
        """)


def test_rc811_quiet_on_seeded_instance():
    assert "RC811" not in _det("""\
        import random
        def f(seed):
            rng = random.Random(seed)
            return rng.choice("ab")
        """)


def test_rc812_set_iteration():
    assert "RC812" in _det("""\
        def f(xs):
            for x in set(xs):
                yield x
        """)


def test_rc812_quiet_on_sorted_set():
    assert "RC812" not in _det("""\
        def f(xs):
            for x in sorted(set(xs)):
                yield x
        """)


def test_rc813_environ_read():
    assert "RC813" in _det("""\
        import os
        def f():
            return os.getenv("REPRO_MODE")
        """)


def test_rc813_sanctioned_in_backend():
    found = check_source("network/backend.py", textwrap.dedent("""\
        import os
        MODE = os.environ.get("REPRO_BACKEND")
        """))
    assert "RC813" not in _codes(found)


def test_rc814_float_eq_sim_time():
    assert "RC814" in _det("""\
        def f(loop):
            return loop.now == 1.5
        """)


def test_rc814_quiet_on_exact_clock_compare():
    # ``when == loop._now`` (no float literal) is the runtime's
    # intentional same-instant fast path, not a hazard.
    assert "RC814" not in _det("""\
        def f(loop, when):
            return when == loop._now
        """)


def test_subpackage_grouping():
    assert subpackage_of("network/backend.py") == "network"
    assert subpackage_of("version.py") == "repro"


# ----------------------------------------------------------------------
# pass 3: arena rules, trigger vs legal form
# ----------------------------------------------------------------------
LEGAL_ACQUIRE = """\
    def transmit(self, target, message, when):
        free = self._free
        if free:
            event = free.pop()
            event.time = when
            event.seq = next(loop._seq)
            event.callback = deliver
            event.args = (message,)
            event._loop = loop
        else:
            event = Event(when, 0, 1, deliver, (message,), loop)
        return event
    """


def test_rc820_incomplete_acquire():
    assert "RC820" in _arena("""\
        def transmit(self, target, message, when):
            free = self._free
            event = free.pop()
            event.time = when
            return event
        """)


def test_rc820_quiet_on_full_rearm():
    assert "RC820" not in _arena(LEGAL_ACQUIRE)


def test_rc821_release_keeps_signal():
    assert "RC821" in _arena("""\
        def process(self, message):
            deliver(message.signal)
            pool = self._loop._env_pool
            if len(pool) < _ENV_POOL_MAX:
                pool.append(message)
        """)


def test_rc822_uncapped_release():
    assert "RC822" in _arena("""\
        def process(self, message):
            message.signal = None
            pool = self._loop._env_pool
            pool.append(message)
        """)


def test_release_clean_when_reset_and_capped():
    assert not _arena("""\
        def process(self, message):
            deliver(message.signal)
            message.signal = None
            pool = self._loop._env_pool
            if len(pool) < _ENV_POOL_MAX:
                pool.append(message)
        """) & {"RC821", "RC822"}


def test_rc823_rearm_without_fresh_seq():
    assert "RC823" in _arena("""\
        def rearm(self, node, loop, when):
            event = node._stim_event
            event.time = when
            event._loop = loop
            return event
        """)


def test_rc823_quiet_with_fresh_seq():
    assert "RC823" not in _arena("""\
        def rearm(self, node, loop, when):
            event = node._stim_event
            event.time = when
            event.seq = next(loop._seq)
            event._loop = loop
            return event
        """)


def test_c_contract_violation_detected():
    with open(c_source_path(), encoding="utf-8") as fh:
        text = fh.read()
    doctored = text.replace("ev->seq = seq;", "/* seq reuse */")
    assert doctored != text
    assert _codes(check_c_contracts(doctored))
