"""Surface extraction over the *shipped* sources: the parity pass is
only as good as what the extractors see, so these tests pin the
extracted shapes (kernel sets, comparator order, constants, ABI) to
the known runtime contract."""

from repro.audit.surface import (extract_c_surface, load_c_surface,
                                 load_py_surface)

#: The eight dispatch-critical kernels the seam exports.
KERNELS = frozenset({"Event", "Deliver", "Receive", "Finish", "Process",
                     "LinkTransmit", "SlotTransmit", "drain"})


def test_c_surface_kernels():
    assert load_c_surface().kernels == KERNELS


def test_py_surface_kernels():
    assert load_py_surface().kernels_consumed == KERNELS


def test_comparator_field_order_matches():
    c = load_c_surface()
    py = load_py_surface()
    assert c.comparator == ("time", "priority", "seq")
    for name, fields in py.comparators.items():
        assert fields == c.comparator, name


def test_arena_caps_and_abi_match():
    c = load_c_surface()
    py = load_py_surface()
    assert c.constants["FREELIST_MAX"] == py.constants["FREELIST_MAX"]
    assert c.constants["ENV_POOL_MAX"] == py.constants["ENV_POOL_MAX"]
    assert (c.constants["DELIVER_BATCH_MAX"]
            == py.constants["DELIVER_BATCH_MAX"])
    assert c.constants["CCORE_ABI_VERSION"] == 2
    assert py.abi_expected == frozenset({2})


def test_interned_names_are_spelled_in_python():
    c = load_c_surface()
    py = load_py_surface()
    assert c.interned  # the INTERN table was actually found
    missing = (set(c.interned) | set(c.attr_lookups)) - py.attribute_names
    assert not missing, missing


def test_module_lookups_resolve_structurally():
    lookups = dict(load_c_surface().module_lookups)
    assert lookups.get("repro.protocol.signals") or any(
        mod == "repro.protocol.signals"
        for mod, _ in load_c_surface().module_lookups)
    pairs = set(load_c_surface().module_lookups)
    assert ("repro.protocol.signals", "TunnelMessage") in pairs
    assert ("repro.protocol.slot", "Slot") in pairs


def test_py_surface_extraction_has_no_problems():
    assert load_py_surface().problems == ()


def test_extractor_rejects_surface_loss():
    """An extractor that silently matches nothing would make every
    parity run vacuously clean; extraction over empty text must come
    back visibly empty so diff_surfaces can flag it."""
    empty = extract_c_surface("int main(void) { return 0; }\n")
    assert not empty.kernels
    assert not empty.interned
    assert empty.comparator == ()
