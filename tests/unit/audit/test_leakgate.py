"""The dynamic pass: replayed apps return the process to a steady
object population, and the gate's verdict arithmetic is sound."""

import pytest

from repro.audit.leakgate import LeakReport, run_leak_gate


def test_click_to_dial_is_stable():
    report = run_leak_gate(runs=3)
    assert report.stable, report.format()
    assert len(report.counts) == report.warmup + 3


def test_every_bundled_app_is_stable():
    from repro.chaos.scenarios import SCENARIOS
    for app in sorted(SCENARIOS):
        report = run_leak_gate(app=app, runs=2)
        assert report.stable, report.format()


def test_unknown_app_raises():
    with pytest.raises(KeyError):
        run_leak_gate(app="no_such_app")


def test_report_flags_growth():
    report = LeakReport(app="x", runs=3, warmup=1, tolerance=8,
                        counts=[50, 100, 130, 160],
                        refcounts=[None] * 4)
    assert report.window == [100, 130, 160]
    assert report.spread == 60 and report.growth == 60
    assert not report.stable
    assert "LEAKING" in report.format()


def test_report_tolerates_jitter_within_bound():
    report = LeakReport(app="x", runs=3, warmup=1, tolerance=8,
                        counts=[50, 100, 104, 98],
                        refcounts=[None] * 4)
    assert report.spread == 6 and report.stable
    assert report.to_json()["stable"] is True
