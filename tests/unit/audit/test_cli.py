"""``python -m repro audit``: output formats, target selection, the
merged rule catalog, the leak gate, and normalized exit codes
(0 clean / 1 findings / 2 usage error)."""

import io
import json

import pytest

from repro.__main__ import main as repro_main
from repro.audit.cli import main as audit_main
from repro.staticcheck.cli import main as lint_main


def test_clean_audit_exits_zero():
    out = io.StringIO()
    assert audit_main([], stream=out) == 0
    assert "0 error(s), 0 warning(s)" in out.getvalue()


def test_fixtures_exit_one():
    out = io.StringIO()
    assert audit_main(["--fixtures"], stream=out) == 1
    assert "audit-RC801" in out.getvalue()


def test_unknown_target_exits_two():
    assert audit_main(["--target", "no/such"],
                      stream=io.StringIO()) == 2


def test_bad_flag_exits_two():
    with pytest.raises(SystemExit) as err:
        audit_main(["--bogus"], stream=io.StringIO())
    assert err.value.code == 2


def test_list_names_targets():
    out = io.StringIO()
    assert audit_main(["--list"], stream=out) == 0
    names = out.getvalue().split()
    assert "runtime/parity" in names
    assert "runtime/arenas" in names
    assert "runtime/determinism/network" in names


def test_single_target_selection():
    out = io.StringIO()
    assert audit_main(["--target", "runtime/parity"], stream=out) == 0
    text = out.getvalue()
    assert "runtime/parity" in text and "1 target(s)" in text


def test_json_output_shape():
    out = io.StringIO()
    assert audit_main(["--format", "json"], stream=out) == 0
    payload = json.loads(out.getvalue())
    assert payload["summary"]["errors"] == 0
    names = {t["name"] for t in payload["targets"]}
    assert {"runtime/parity", "runtime/arenas"} <= names
    assert all(t["clean"] for t in payload["targets"])


def test_determinism_waivers_carry_reasons():
    out = io.StringIO()
    assert audit_main(["--format", "json",
                       "--target", "runtime/determinism/load"],
                      stream=out) == 0
    (target,) = json.loads(out.getvalue())["targets"]
    assert target["suppressed"], "expected waived RC810 wall-clock reads"
    # The load waivers cover wall-clock reads (the harness measures
    # throughput) and the calibration probe's child-process environ
    # forwarding; anything else must surface as a real finding.
    assert {s["code"] for s in target["suppressed"]} <= {"RC810", "RC813"}
    assert "RC810" in {s["code"] for s in target["suppressed"]}
    assert all(s["reason"] for s in target["suppressions"])


def test_audit_list_rules_merges_catalogs():
    out = io.StringIO()
    assert audit_main(["--list-rules"], stream=out) == 0
    text = out.getvalue()
    assert "RC101" in text and "RC801" in text and "RC823" in text


def test_lint_list_rules_includes_audit_codes():
    out = io.StringIO()
    assert lint_main(["--list-rules"], stream=out) == 0
    text = out.getvalue()
    assert "RC101" in text and "RC810" in text


def test_main_dispatches_audit(capsys):
    assert repro_main(["audit", "--target", "runtime/arenas"]) == 0
    assert "runtime/arenas" in capsys.readouterr().out


def test_main_audit_propagates_failure_exit(capsys):
    assert repro_main(["audit", "--fixtures"]) == 1
    capsys.readouterr()


def test_leak_gate_cli_stable(capsys):
    out = io.StringIO()
    assert audit_main(["--leak-gate", "--runs", "3"], stream=out) == 0
    assert "STABLE" in out.getvalue()


def test_leak_gate_json(capsys):
    out = io.StringIO()
    assert audit_main(["--leak-gate", "--runs", "3",
                       "--format", "json"], stream=out) == 0
    payload = json.loads(out.getvalue())
    assert payload["stable"] is True
    assert len(payload["counts"]) == 3 + payload["warmup"]


def test_leak_gate_unknown_app_exits_two():
    assert audit_main(["--leak-gate", "--app", "no_such_app"],
                      stream=io.StringIO()) == 2
