"""Tests for the unified ``python -m repro`` entry point and the
``trace`` / ``sweep`` subcommand CLIs."""

import io
import json

import pytest

from repro import __version__
from repro.__main__ import main as repro_main
from repro.obs.cli import main as trace_main
from repro.verification.cli import main as sweep_main


# ----------------------------------------------------------------------
# the top-level entry point
# ----------------------------------------------------------------------
def test_version_flag(capsys):
    assert repro_main(["--version"]) == 0
    assert capsys.readouterr().out.strip() == "repro %s" % __version__


def test_help_lists_every_subcommand(capsys):
    with pytest.raises(SystemExit) as exc:
        repro_main(["--help"])
    assert exc.value.code == 0
    out = capsys.readouterr().out
    for name in ("latency", "verify", "scenario", "lint", "audit",
                 "chaos", "sweep", "trace", "serve", "call",
                 "live-demo", "all"):
        assert name in out


def test_unknown_command_exits_two(capsys):
    with pytest.raises(SystemExit) as exc:
        repro_main(["frobnicate"])
    assert exc.value.code == 2


def test_every_registry_target_resolves_to_a_callable():
    # The registry is the single source of dispatch: every entry's
    # ``module[:function]`` target must import and resolve.
    import importlib
    from repro.__main__ import _DELEGATED
    for name, (target, _desc) in _DELEGATED.items():
        module_path, _, function = target.partition(":")
        module = importlib.import_module(module_path)
        assert callable(getattr(module, function or "main")), name


def test_serve_and_call_usage_errors_exit_two():
    with pytest.raises(SystemExit) as exc:
        repro_main(["call"])  # --gateway/--to are required
    assert exc.value.code == 2
    with pytest.raises(SystemExit) as exc:
        repro_main(["serve", "--peer", "not-a-hostport"])
    assert exc.value.code == 2


def test_trace_subcommand_is_dispatched(capsys):
    assert repro_main(["trace", "--list-apps"]) == 0
    assert "click_to_dial" in capsys.readouterr().out


def test_delegated_usage_errors_exit_two():
    with pytest.raises(SystemExit) as exc:
        repro_main(["trace", "no_such_app"])
    assert exc.value.code == 2


# ----------------------------------------------------------------------
# python -m repro trace
# ----------------------------------------------------------------------
def test_trace_summary_text():
    out = io.StringIO()
    assert trace_main(["click_to_dial"], out=out) == 0
    text = out.getvalue()
    assert "== trace click_to_dial (seed 7) ==" in text
    assert "spans (3):" in text
    assert "signals.sent" in text
    assert "fingerprint:" in text


def test_trace_json_export_is_valid_and_deterministic(tmp_path):
    paths = [tmp_path / "a.json", tmp_path / "b.json"]
    for path in paths:
        assert trace_main(["click_to_dial", "--json", str(path)],
                          out=io.StringIO()) == 0
    first, second = (p.read_bytes() for p in paths)
    assert first == second
    payload = json.loads(first)
    spans = [e for e in payload["traceEvents"] if e["ph"] == "X"]
    assert len(spans) == 3  # one per media channel of click_to_dial
    assert payload["otherData"]["app"] == "click_to_dial"
    assert payload["otherData"]["seed"] == 7


def test_trace_json_to_stdout_is_pure_json():
    out = io.StringIO()
    assert trace_main(["click_to_dial", "--json", "-"], out=out) == 0
    json.loads(out.getvalue())  # no summary mixed in


def test_trace_timeline_and_category_filter():
    out = io.StringIO()
    assert trace_main(["click_to_dial", "--timeline",
                       "--category", "program,goal"], out=out) == 0
    lines = out.getvalue().splitlines()
    assert lines
    assert all(" program." in l or " goal." in l for l in lines)


def test_trace_msc_lines_format():
    out = io.StringIO()
    assert trace_main(["click_to_dial", "--msc"], out=out) == 0
    for line in out.getvalue().splitlines():
        assert " -> " in line and " : " in line


def test_trace_with_fault_plan_records_faults(tmp_path):
    path = tmp_path / "faulted.json"
    out = io.StringIO()
    assert trace_main(["click_to_dial", "--plan", "drop10+dup10",
                       "--json", str(path)], out=out) == 0
    payload = json.loads(path.read_text())
    assert payload["otherData"]["plan"]["name"] == "drop10+dup10"
    assert payload["otherData"]["retransmit"] is True


def test_trace_rejects_unknown_plan_and_missing_app():
    with pytest.raises(SystemExit) as exc:
        trace_main(["click_to_dial", "--plan", "nope"])
    assert exc.value.code == 2
    with pytest.raises(SystemExit) as exc:
        trace_main([])
    assert exc.value.code == 2


# ----------------------------------------------------------------------
# python -m repro sweep
# ----------------------------------------------------------------------
def test_sweep_single_path_type(tmp_path):
    out = io.StringIO()
    trace_path = tmp_path / "sweep.json"
    results_path = tmp_path / "results.json"
    code = sweep_main(["--path-type", "CC", "--jobs", "1",
                       "--json", str(results_path),
                       "--trace-json", str(trace_path)], out=out)
    assert code == 0
    text = out.getvalue()
    assert "CC" in text and "CC+link" in text
    results = json.loads(results_path.read_text())
    assert [r["key"] for r in results] == ["CC", "CC+link"]
    assert all(r["safety_ok"] and r["property_ok"] for r in results)
    trace = json.loads(trace_path.read_text())
    slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert [s["name"] for s in slices] == ["CC", "CC+link"]
    # Serial layout: each slice starts where the previous ended.
    assert slices[1]["ts"] == pytest.approx(slices[0]["ts"]
                                            + slices[0]["dur"])
    assert trace["otherData"]["models"] == 2


def test_sweep_truncation_exits_one():
    out = io.StringIO()
    code = sweep_main(["--path-type", "CC", "--jobs", "1",
                       "--max-states", "10"], out=out)
    assert code == 1
    assert "truncated" in out.getvalue()


def test_sweep_rejects_unknown_path_type():
    with pytest.raises(SystemExit) as exc:
        sweep_main(["--path-type", "ZZ"])
    assert exc.value.code == 2


# ----------------------------------------------------------------------
# python -m repro chaos --trace-json
# ----------------------------------------------------------------------
def test_chaos_trace_json_single_and_multi_app(tmp_path):
    from repro.chaos.cli import main as chaos_main
    single = tmp_path / "one.json"
    code = chaos_main(["--app", "click_to_dial",
                       "--trace-json", str(single)], out=io.StringIO())
    assert code == 0
    payload = json.loads(single.read_text())
    assert payload["otherData"]["app"] == "click_to_dial"
    assert payload["otherData"]["converged"] is True

    multi = tmp_path / "many.json"
    code = chaos_main(["--app", "pbx", "--app", "prepaid",
                       "--trace-json", str(multi)], out=io.StringIO())
    assert code == 0
    for app in ("pbx", "prepaid"):
        per_app = tmp_path / ("many.%s.json" % app)
        assert json.loads(per_app.read_text())["otherData"]["app"] == app


def test_chaos_divergence_report_carries_flight_tail():
    from repro.chaos.cli import main as chaos_main
    out = io.StringIO()
    code = chaos_main(["--app", "click_to_dial", "--no-retransmit"],
                      out=out)
    assert code == 1
    assert "flight recorder tail" in out.getvalue()
