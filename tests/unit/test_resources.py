"""Unit tests for media resources (tones, announcements, IVR, bridge,
movie server)."""

import pytest

from repro import AUDIO, Network
from repro.media.resources import (AnnouncementPlayer, ConferenceBridge,
                                   InteractiveVoice, MovieServer,
                                   ToneGenerator)


def test_tone_generator_plays_to_caller():
    net = Network(seed=21)
    a = net.device("A")
    tone = net.resource("busy-tone", ToneGenerator, tone="busy")
    ch = net.channel(a, tone)
    sa = ch.end_for(a).slot()
    a.open(sa, AUDIO)
    net.settle()
    assert "tone:busy" in net.plane.heard_by(a)
    # send-only: the tone generator receives nothing.
    assert not net.plane.flow_exists(a, tone)


def test_announcement_completes_and_reports():
    net = Network(seed=21)
    a = net.device("A")
    ann = net.resource("greeting", AnnouncementPlayer,
                       announcement="welcome", duration=1.5)
    ch = net.channel(a, ann)
    sa = ch.end_for(a).slot()
    a.open(sa, AUDIO)
    net.run(1.0)
    assert "announcement:welcome" in net.plane.heard_by(a)
    net.settle()
    assert sa.is_closed                      # player closed when done
    assert len(ann.completed) == 1
    # The completion meta-signal reached the caller side.
    # (devices ignore meta-signals; presence in the channel suffices)


def test_interactive_voice_reports_payment():
    net = Network(seed=21)
    box = net.box("pc")
    v = net.resource("V", InteractiveVoice, verify_delay=0.5)
    ch = net.channel(box, v)
    slot = ch.end_for(box).slot()
    box.open_slot(slot, AUDIO)
    net.settle(max_events=10_000)
    assert v.payments
    kinds = [(s.kind, getattr(s, "name", None)) for _, s in box.meta_log]
    assert ("app", "user-paid") in kinds


def test_interactive_voice_no_payment_when_user_will_not_pay():
    net = Network(seed=21)
    box = net.box("pc")
    v = net.resource("V", InteractiveVoice, verify_delay=0.5)
    v.will_pay = False
    ch = net.channel(box, v)
    box.open_slot(ch.end_for(box).slot(), AUDIO)
    net.settle()
    assert not v.payments


@pytest.fixture
def conference():
    """Three devices connected to a bridge via one server box."""
    net = Network(seed=22)
    server = net.box("conf-server")
    bridge = net.resource("bridge", ConferenceBridge)
    devices = {}
    slots = {}
    for name in ("A", "B", "C"):
        dev = net.device(name, auto_accept=True)
        ch_user = net.channel(server, dev, target="user:%s" % name)
        ch_bridge = net.channel(server, bridge, target="user:%s" % name)
        server.flow_link(ch_user.end_for(server).slot(),
                         ch_bridge.end_for(server).slot())
        # The server opens toward the user; the flowlink pulls the
        # bridge side up.  Simplest: open from the user's end.
        dev_slot = ch_user.end_for(dev).slot()
        dev.auto_accept = True
        devices[name] = dev
        slots[name] = dev_slot
    # Users join by opening their channels.
    for name, dev in devices.items():
        dev.open(slots[name], AUDIO)
    net.settle()
    return net, server, bridge, devices


def test_conference_full_mix(conference):
    net, server, bridge, devices = conference
    heard_a = net.plane.heard_by(devices["A"])
    assert "audio:B" in heard_a and "audio:C" in heard_a
    assert "audio:A" not in heard_a  # no echo of your own voice
    heard_b = net.plane.heard_by(devices["B"])
    assert "audio:A" in heard_b and "audio:C" in heard_b


def test_conference_business_muting(conference):
    # Mute the noisy participant B's input: everyone still talks to B,
    # but B's background noise no longer reaches A or C.
    net, server, bridge, devices = conference
    bridge.set_mix("user:B", "user:A", "blocked")
    bridge.set_mix("user:B", "user:C", "blocked")
    assert "audio:B" not in net.plane.heard_by(devices["A"])
    assert "audio:B" not in net.plane.heard_by(devices["C"])
    assert "audio:A" in net.plane.heard_by(devices["B"])


def test_conference_emergency_muting(conference):
    # B (the emergency caller) keeps being heard but cannot hear the
    # responders' coordination (Sec. IV-B).
    net, server, bridge, devices = conference
    bridge.set_mix("user:A", "user:B", "blocked")
    bridge.set_mix("user:C", "user:B", "blocked")
    assert net.plane.heard_by(devices["B"]) == frozenset()
    assert "audio:B" in net.plane.heard_by(devices["A"])
    assert "audio:B" in net.plane.heard_by(devices["C"])


def test_conference_training_whisper(conference):
    # A = trainee agent, B = customer, C = supervisor: B must not hear
    # C; A hears a whispered C (Sec. IV-B).
    net, server, bridge, devices = conference
    bridge.set_mix("user:C", "user:B", "blocked")
    bridge.set_mix("user:C", "user:A", "whisper")
    heard_b = net.plane.heard_by(devices["B"])
    assert "audio:C" not in heard_b and "whisper:audio:C" not in heard_b
    heard_a = net.plane.heard_by(devices["A"])
    assert "whisper:audio:C" in heard_a
    assert "audio:C" not in heard_a
    heard_c = net.plane.heard_by(devices["C"])
    assert "audio:A" in heard_c and "audio:B" in heard_c


def test_conference_mix_via_meta_signal(conference):
    net, server, bridge, devices = conference
    # The server drives the bridge with the standardized meta-signal.
    end = bridge.channel_ends[0].peer  # server side of a bridge channel
    from repro.protocol.signals import AppMeta
    server_end = [e for e in server.channel_ends
                  if e.peer.owner is bridge][0]
    server_end.send_meta(AppMeta("set-mix", {
        "speaker": "user:B", "listener": "user:A", "mode": "blocked"}))
    net.settle()
    assert "audio:B" not in net.plane.heard_by(devices["A"])


def test_movie_server_sessions_share_time_pointer():
    net = Network(seed=23)
    box = net.box("collab")
    movie = net.resource("movies", MovieServer, catalog=("heidi",))
    ch = net.channel(box, movie, tunnels=("video-A", "audio-A",
                                          "video-C", "audio-C",
                                          "audio-fr-B"),
                     target="movie:heidi")
    for tid in ch.tunnel_ids:
        box.open_slot(ch.end_for(box).slot(tid), AUDIO
                      if "audio" in tid else "video")
    net.settle()
    session = movie.sessions()[0]
    assert session.title == "heidi"
    assert session.playing
    from repro.protocol.signals import AppMeta
    ch.end_for(box).send_meta(AppMeta("pause"))
    net.run(1.0)
    pos_at_pause = session.position_at(net.now)
    net.run(5.0)
    assert session.position_at(net.now) == pos_at_pause  # paused
    ch.end_for(box).send_meta(AppMeta("play"))
    net.run(2.0)
    assert session.position_at(net.now) == pytest.approx(pos_at_pause + 2.0)


def test_movie_server_seek():
    net = Network(seed=23)
    box = net.box("collab")
    movie = net.resource("movies", MovieServer, catalog=("heidi",))
    ch = net.channel(box, movie, target="movie:heidi")
    box.open_slot(ch.end_for(box).slot(), "video")
    net.settle()
    from repro.protocol.signals import AppMeta
    ch.end_for(box).send_meta(AppMeta("seek", {"position": 3600.0}))
    net.settle()
    session = movie.sessions()[0]
    assert session.position_at(net.now) >= 3600.0


def test_separate_channels_get_separate_sessions():
    net = Network(seed=23)
    box1 = net.box("collab-A")
    box2 = net.box("collab-C")
    movie = net.resource("movies", MovieServer, catalog=("heidi",))
    ch1 = net.channel(box1, movie, target="movie:heidi")
    ch2 = net.channel(box2, movie, target="movie:heidi")
    box1.open_slot(ch1.end_for(box1).slot(), "video")
    box2.open_slot(ch2.end_for(box2).slot(), "video")
    net.settle()
    assert len(movie.sessions()) == 2
