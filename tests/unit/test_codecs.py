"""Unit tests for codecs and codec choice (Sec. VI-A)."""

import pytest

from repro.protocol.codecs import (AUDIO, G711, G726, G729, NO_MEDIA, VIDEO,
                                   best_common_codec, codecs_for_medium,
                                   registry, MPEG4_HD)


def test_no_media_is_not_real():
    assert not NO_MEDIA.is_real
    assert G711.is_real


def test_g711_higher_fidelity_than_g726():
    # "G.726 is a lower-fidelity ... codec for audio, while G.711 is a
    # higher-fidelity ... codec" (Sec. VI-A).
    assert G711.fidelity > G726.fidelity
    assert G711.bandwidth > G726.bandwidth


def test_codecs_for_medium_sorted_best_first():
    audio = codecs_for_medium(AUDIO)
    assert all(c.medium == AUDIO for c in audio)
    fidelities = [c.fidelity for c in audio]
    assert fidelities == sorted(fidelities, reverse=True)
    assert NO_MEDIA not in audio


def test_registry_contains_all_names():
    reg = registry()
    assert reg["G.711"] is G711
    assert reg["noMedia"] is NO_MEDIA


def test_best_common_codec_honors_receiver_priority():
    # The sender picks the highest-priority codec from the receiver's
    # list that it can produce.
    offered = (G726, G711)  # receiver prefers G.726
    assert best_common_codec(offered, (G711, G726)) is G726


def test_best_common_codec_skips_unsupported():
    offered = (G711, G726, G729)
    assert best_common_codec(offered, (G729,)) is G729


def test_best_common_codec_none_when_disjoint():
    assert best_common_codec((G711,), (G729,)) is None


def test_best_common_codec_none_for_no_media_descriptor():
    # "The only legal response to a descriptor noMedia is a selector
    # noMedia."
    assert best_common_codec((NO_MEDIA,), (G711, G726)) is None


def test_best_common_codec_ignores_no_media_support():
    assert best_common_codec((G711,), (NO_MEDIA,)) is None


def test_video_codecs_distinct_from_audio():
    assert MPEG4_HD.medium == VIDEO
    assert MPEG4_HD not in codecs_for_medium(AUDIO)
