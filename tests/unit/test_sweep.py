"""The parallel sweep driver: ordering, equivalence, timeouts."""

from repro.verification import (PATH_TYPES, SweepJob, default_jobs,
                                run_jobs, sweep, verify_all)


def test_default_jobs_cover_grid_in_report_order():
    jobs = default_jobs()
    assert len(jobs) == 12
    assert [j.path_type for j in jobs[:6]] == list(PATH_TYPES)
    assert [j.flowlinks for j in jobs] == [0] * 6 + [1] * 6


def test_serial_sweep_matches_verify_all():
    serial = verify_all()
    swept = sweep(processes=1)
    assert [(r.key, r.states, r.transitions, r.safety_ok, r.property_ok)
            for r in swept] \
        == [(r.key, r.states, r.transitions, r.safety_ok, r.property_ok)
            for r in serial]


def test_parallel_sweep_matches_verify_all():
    """Worker-pool results come back in job order with identical
    counts.  (On platforms without multiprocessing this degrades to a
    serial run, which must still match.)"""
    serial = verify_all()
    swept = sweep(processes=2)
    assert [(r.key, r.states, r.transitions, r.ok) for r in swept] \
        == [(r.key, r.states, r.transitions, r.ok) for r in serial]


def test_sweep_model_kwargs_reach_workers():
    swept = sweep(path_types=["CC"], flowlink_counts=(0,),
                  processes=1, phase1_budget=2, modify_budget=2,
                  queue_capacity=8, max_versions=4)
    assert len(swept) == 1
    # the rich CC config has 379 states (seed-recorded)
    assert swept[0].states == 379


def test_per_model_timeout_truncates_not_raises():
    jobs = [SweepJob("OO", flowlinks=2, max_states=3_000_000,
                     max_seconds=0.0)]
    [result] = run_jobs(jobs, processes=1)
    assert result.truncated
    assert not result.ok  # truncated graphs are never certified


def test_state_budget_truncates_in_sweep():
    [result] = run_jobs([SweepJob("OO", flowlinks=1, max_states=40)],
                        processes=1)
    assert result.truncated
    assert result.states <= 40


def test_two_flowlink_sweep():
    results = sweep(flowlink_counts=(2,), path_types=["CC", "CH"],
                    processes=2)
    assert [r.key for r in results] == ["CC+2links", "CH+2links"]
    assert all(r.ok for r in results)
