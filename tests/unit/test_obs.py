"""Unit tests for the observability subsystem (repro.obs): flight
recorder, metrics, span tracking, the tracer hub, and the exporters."""

import json

import pytest

from repro import AUDIO, Network
from repro.obs.events import (ChannelEvent, FaultInjected, GoalEvent,
                              ProgramStep, Retransmit, SignalReceived,
                              SignalSent, SlotDrop, SlotFailed,
                              SlotTransition)
from repro.obs.export import (chrome_trace, dumps_chrome, msc_lines,
                              render_timeline)
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.recorder import FlightRecorder
from repro.obs.spans import SpanTracker
from repro.obs.tracer import Tracer


# ----------------------------------------------------------------------
# flight recorder
# ----------------------------------------------------------------------
def test_recorder_ring_keeps_only_last_capacity():
    rec = FlightRecorder(capacity=3)
    for i in range(10):
        rec.record(SlotDrop(ts=float(i), slot="s", channel="c",
                            tunnel="t0", kind="duplicate"))
    assert len(rec) == 3
    assert rec.recorded == 10
    assert [e.ts for e in rec.events()] == [7.0, 8.0, 9.0]


def test_recorder_tail_formats_lines_and_bounds_n():
    rec = FlightRecorder(capacity=8)
    rec.record(Retransmit(ts=1.5, slot="a@ch/t0", channel="ch",
                          tunnel="t0", kind="open", attempt=2))
    rec.record(SlotFailed(ts=2.0, slot="a@ch/t0", channel="ch",
                          tunnel="t0", reason="open"))
    tail = rec.tail()
    assert tail == [
        "t=1.5000 slot.retransmit a@ch/t0 open attempt=2",
        "t=2.0000 slot.failed a@ch/t0 reason=open",
    ]
    assert rec.tail(1) == tail[-1:]


def test_recorder_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
def test_histogram_nearest_rank_percentiles():
    h = Histogram("x")
    for v in [5.0, 1.0, 3.0, 2.0, 4.0]:
        h.observe(v)
    assert h.percentile(50) == 3.0
    assert h.percentile(0) == 1.0
    assert h.percentile(100) == 5.0
    assert h.percentile(90) == 5.0
    snap = h.snapshot()
    assert snap["count"] == 5 and snap["min"] == 1.0 and snap["max"] == 5.0


def test_histogram_empty_and_bad_percentile():
    h = Histogram("x")
    assert h.percentile(50) is None
    assert h.snapshot() == {"count": 0}
    h.observe(1.0)
    with pytest.raises(ValueError):
        h.percentile(101)


def test_registry_standard_wiring_counts_by_kind():
    reg = MetricsRegistry()
    reg.feed(SignalSent(ts=0.0, channel="ch", source="a", target="b",
                        kind="open", label="open(x)", tunnel="t0"))
    reg.feed(SignalReceived(ts=0.1, channel="ch", agent="b", tunnel="t0",
                            kind="open", label="open(x)",
                            state_before="closed", state_after="opened",
                            accepted=True))
    reg.feed(Retransmit(ts=0.2, slot="s", channel="ch", tunnel="t0",
                        kind="open", attempt=1))
    reg.feed(SlotDrop(ts=0.3, slot="s", channel="ch", tunnel="t0",
                      kind="duplicate"))
    reg.feed(SlotFailed(ts=0.4, slot="s", channel="ch", tunnel="t0",
                        reason="open"))
    reg.feed(GoalEvent(ts=0.5, box="b", goal="OpenSlot", slots=("s",),
                       action="install"))
    reg.feed(ProgramStep(ts=0.6, box="b", source="a", target="b"))
    reg.feed(FaultInjected(ts=0.7, link="l", action="drop"))
    reg.feed(ChannelEvent(ts=0.8, channel="ch", action="up"))
    counters = reg.snapshot()["counters"]
    assert counters["signals.sent"] == 1
    assert counters["signals.sent.open"] == 1
    assert counters["signals.recv.open"] == 1
    assert counters["slot.retransmits.open"] == 1
    assert counters["slot.drops.duplicate"] == 1
    assert counters["slot.failures"] == 1
    assert counters["goals.install"] == 1
    assert counters["program.steps"] == 1
    assert counters["faults.drop"] == 1
    assert counters["channels.up"] == 1


# ----------------------------------------------------------------------
# span tracking (synthetic event feed)
# ----------------------------------------------------------------------
def _transition(ts, side, old, new, cause, medium=""):
    return SlotTransition(ts=ts, slot="s%d" % side, channel="ch",
                          tunnel="t0", end="end%d" % side, side=side,
                          old=old, new=new, cause=cause, medium=medium)


def test_span_lifecycle_open_flowing_closed():
    metrics = MetricsRegistry()
    tracker = SpanTracker(metrics)
    tracker.feed(_transition(1.0, 0, "closed", "opening", "send_open",
                             medium="audio"))
    tracker.feed(_transition(1.1, 1, "closed", "flowing", "send_oack"))
    assert len(tracker.spans) == 1
    span = tracker.spans[0]
    assert span.opened_at == 1.0 and span.medium == "audio"
    assert span.flowing_at is None
    tracker.feed(_transition(1.2, 0, "opening", "flowing", "recv_oack"))
    assert span.flowing_at == 1.2
    assert span.time_to_flowing() == pytest.approx(0.2)
    tracker.feed(_transition(2.0, 0, "flowing", "closing", "send_close"))
    tracker.feed(_transition(2.1, 1, "flowing", "closed", "recv_close"))
    tracker.feed(_transition(2.2, 0, "closing", "closed", "recv_closeack"))
    assert span.closed_at == 2.2
    assert span.duration() == pytest.approx(1.2)
    hist = metrics.snapshot()["histograms"]
    assert hist["span.time_to_flowing"]["count"] == 1
    assert hist["span.lifetime"]["count"] == 1


def test_span_episode_indices_on_tunnel_reuse():
    tracker = SpanTracker()
    for base in (0.0, 10.0):
        tracker.feed(_transition(base, 0, "closed", "opening", "send_open"))
        tracker.feed(_transition(base + 1, 0, "opening", "closed",
                                 "gave_up"))
    assert [s.index for s in tracker.spans] == [1, 2]
    assert tracker.spans[0].label == "ch/t0#1"
    assert tracker.spans[1].label == "ch/t0#2"
    assert not tracker.open_spans()


def test_span_annotations_race_retransmit_failure():
    tracker = SpanTracker()
    tracker.feed(_transition(0.0, 0, "closed", "opening", "send_open"))
    tracker.feed(SlotDrop(ts=0.1, slot="s0", channel="ch", tunnel="t0",
                          kind="race"))
    tracker.feed(Retransmit(ts=0.2, slot="s0", channel="ch", tunnel="t0",
                            kind="open", attempt=1))
    tracker.feed(SlotFailed(ts=0.3, slot="s0", channel="ch", tunnel="t0",
                            reason="open"))
    span = tracker.spans[0]
    assert span.races == 1 and span.retransmits == 1 and span.failed


def test_span_redescribe_counted_only_while_flowing():
    tracker = SpanTracker()
    tracker.feed(_transition(0.0, 0, "closed", "flowing", "send_oack"))
    tracker.feed(_transition(0.1, 1, "closed", "flowing", "recv_oack"))

    def describe(ts):
        return SignalReceived(ts=ts, channel="ch", agent="a",
                              tunnel="t0", kind="describe",
                              label="describe(x)", state_before="flowing",
                              state_after="flowing", accepted=True)

    tracker.feed(describe(0.2))
    assert tracker.spans[0].redescribes == 1


# ----------------------------------------------------------------------
# the tracer hub
# ----------------------------------------------------------------------
def test_tracer_fans_out_and_counts():
    tracer = Tracer(ring=4)
    seen = []
    tracer.subscribe(seen.append)
    event = ChannelEvent(ts=1.0, channel="ch", action="up")
    tracer.emit(event)
    assert tracer.emitted == 1
    assert tracer.last_ts == 1.0
    assert tracer.events == [event]
    assert tracer.flight.events() == [event]
    assert seen == [event]
    tracer.unsubscribe(seen.append)
    tracer.emit(event)
    assert len(seen) == 1


def test_tracer_keep_events_false_still_records_and_counts():
    tracer = Tracer(keep_events=False)
    tracer.emit(ChannelEvent(ts=1.0, channel="ch", action="up"))
    assert tracer.events is None
    assert tracer.emitted == 1
    assert tracer.flight_tail() == ["t=1.0000 channel.up ch"]
    assert tracer.metrics.snapshot()["counters"]["channels.up"] == 1


def test_exporters_require_full_event_log():
    tracer = Tracer(keep_events=False)
    with pytest.raises(ValueError):
        chrome_trace(tracer)
    with pytest.raises(ValueError):
        render_timeline(tracer)
    with pytest.raises(ValueError):
        msc_lines(tracer)


def test_attach_channel_is_idempotent():
    net = Network(seed=0, trace=True)
    a = net.device("a")
    b = net.device("b", auto_accept=True)
    ch = net.channel(a, b)
    hooks_before = len(ch.link._hooks)
    net.trace.attach_channel(ch)  # constructor already attached it
    assert len(ch.link._hooks) == hooks_before


# ----------------------------------------------------------------------
# exporters over a real run
# ----------------------------------------------------------------------
@pytest.fixture()
def traced_call():
    from repro import FixedLatency
    net = Network(seed=5, latency=FixedLatency(0.01), trace=True)
    a = net.device("alice")
    b = net.device("bob", auto_accept=True)
    ch = net.channel(a, b)
    a.open(ch.initiator_end.slot(), AUDIO)
    net.settle()
    a.close(ch.initiator_end.slot())
    net.settle()
    return net


def test_chrome_trace_structure(traced_call):
    payload = chrome_trace(traced_call.trace, meta={"app": "call"})
    events = payload["traceEvents"]
    phases = {e["ph"] for e in events}
    assert phases == {"M", "X", "i"}
    names = [e["args"]["name"] for e in events
             if e["ph"] == "M" and e["name"] == "process_name"]
    assert names == ["signaling", "media channels", "boxes", "faults"]
    spans = [e for e in events if e["ph"] == "X"]
    assert len(spans) == 1
    span = spans[0]
    assert span["args"]["medium"] == "audio"
    assert span["args"]["still_open"] is False
    assert span["dur"] > 0
    assert payload["otherData"]["app"] == "call"
    assert payload["otherData"]["emitted"] == traced_call.trace.emitted
    # The payload is plain JSON.
    json.loads(dumps_chrome(traced_call.trace))


def test_render_timeline_filters_by_category(traced_call):
    full = render_timeline(traced_call.trace)
    signals = render_timeline(traced_call.trace, categories=["signal"])
    assert len(signals.splitlines()) < len(full.splitlines())
    assert all(" signal." in line for line in signals.splitlines())


def test_msc_lines_match_msc_tool(traced_call):
    # The exporter's MSC view and a SignalTracer capture of the same
    # run (same seed) must agree line for line.  The only difference is
    # the channel-up meta: the trace tap is installed inside the channel
    # constructor, before channel-up is offered to the wire, while a
    # SignalTracer can only attach to an already-constructed channel.
    from repro import FixedLatency
    from repro.tools.msc import SignalTracer
    net = Network(seed=5, latency=FixedLatency(0.01))
    tracer = SignalTracer(net)
    a = net.device("alice")
    b = net.device("bob", auto_accept=True)
    ch = net.channel(a, b)
    tracer.attach(ch)
    a.open(ch.initiator_end.slot(), AUDIO)
    net.settle()
    a.close(ch.initiator_end.slot())
    net.settle()
    trace_view = [line for line in msc_lines(traced_call.trace)
                  if "channel-up" not in line]
    assert trace_view == [str(m) for m in tracer.messages]


def test_disabled_tracing_is_structurally_free():
    net = Network(seed=0)
    assert net.trace is None
    assert net.loop.trace is None
    a = net.device("a")
    b = net.device("b", auto_accept=True)
    ch = net.channel(a, b)
    assert ch.link._hooks == []
