"""Unit tests for the shared benchmark-report plumbing."""

import io
import json

import pytest

from repro.tools.bench import (emit_json, geomean, load_baseline,
                               speedup_vs_seed, write_text)


def test_write_text_creates_parent_directories(tmp_path):
    path = tmp_path / "a" / "b" / "report.json"
    write_text(str(path), "hello\n")
    assert path.read_text() == "hello\n"


def test_emit_json_to_file_is_sorted_and_newline_terminated(tmp_path):
    path = tmp_path / "deep" / "out.json"
    emit_json(str(path), {"b": 1, "a": 2})
    text = path.read_text()
    assert text.endswith("\n")
    assert text.index('"a"') < text.index('"b"')
    assert json.loads(text) == {"a": 2, "b": 1}


def test_emit_json_dash_writes_to_stream():
    out = io.StringIO()
    emit_json("-", {"k": "v"}, out=out)
    assert json.loads(out.getvalue()) == {"k": "v"}


def test_load_baseline_missing_file_is_empty(tmp_path):
    assert load_baseline(str(tmp_path / "nope.json")) == {}


def test_load_baseline_corrupt_file_is_empty(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    assert load_baseline(str(path)) == {}
    path.write_text('["a list, not a dict"]')
    assert load_baseline(str(path)) == {}


def test_load_baseline_key_selects_section(tmp_path):
    path = tmp_path / "seed.json"
    path.write_text(json.dumps({"models": {"OO": {"elapsed": 1.0}},
                                "note": "text"}))
    assert load_baseline(str(path), key="models") == {
        "OO": {"elapsed": 1.0}}
    assert load_baseline(str(path), key="missing") == {}
    assert load_baseline(str(path), key="note") == {}  # non-dict section


def test_geomean():
    assert geomean([]) is None
    assert geomean([4.0]) == 4.0
    assert geomean([1.0, 4.0]) == pytest.approx(2.0)


def test_speedup_vs_seed_guards_missing_and_zero():
    assert speedup_vs_seed(None, 1.0) is None
    assert speedup_vs_seed(1.0, None) is None
    assert speedup_vs_seed(0.0, 1.0) is None
    assert speedup_vs_seed(2.0, 0.0) is None
    assert speedup_vs_seed(2.0, 1.0) == 2.0
