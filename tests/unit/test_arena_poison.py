"""Arena poisoning (``REPRO_ARENA_POISON=1``): use-after-release fails
loudly, and legal recycling paths are completely unaffected.

The flag is read once at import in :mod:`repro.network.backend`, so
the end-to-end checks run child interpreters; the guard-level checks
monkeypatch the per-module poison switches directly.
"""

import os
import subprocess
import sys
import textwrap

import pytest

from repro.protocol import channel
from repro.protocol.channel import ChannelEnd
from repro.protocol.signals import (POISONED_SIGNAL, Close,
                                    TunnelMessage, _PoisonedSignal)
from repro.network import transport
from repro.network.transport import _poisoned_event_fired

_SRC = os.path.normpath(os.path.join(
    os.path.dirname(__file__), "..", "..", "src"))


# ----------------------------------------------------------------------
# the sentinel
# ----------------------------------------------------------------------
def test_sentinel_attribute_access_raises():
    with pytest.raises(RuntimeError, match="use-after-release"):
        POISONED_SIGNAL.kind


def test_sentinel_repr_is_safe():
    # Tracebacks and debuggers repr the envelope holding the sentinel;
    # that must not itself raise.
    assert "poisoned" in repr(POISONED_SIGNAL)
    assert "poisoned" in repr(TunnelMessage("t0", POISONED_SIGNAL))


def test_sentinel_is_a_singleton_sentinel():
    assert type(POISONED_SIGNAL) is _PoisonedSignal


# ----------------------------------------------------------------------
# delivery guard (channel) and freelist guard (transport)
# ----------------------------------------------------------------------
class _LiveEnd:
    alive = True


def test_poisoned_envelope_delivery_raises(monkeypatch):
    monkeypatch.setattr(channel, "_ARENA_POISON", True)
    message = TunnelMessage("t0", POISONED_SIGNAL)
    with pytest.raises(RuntimeError, match="use-after-release"):
        ChannelEnd._process(_LiveEnd(), message)


def test_poison_guard_off_by_default(monkeypatch):
    # With poisoning off the guard must not even evaluate: a real
    # (non-poisoned) signal proceeds into normal dispatch, which here
    # fails on the fake end's missing slots — *after* the guard.
    assert channel._ARENA_POISON is False
    message = TunnelMessage("t0", Close())
    with pytest.raises(AttributeError):
        ChannelEnd._process(_LiveEnd(), message)


def test_poisoned_event_callback_raises():
    with pytest.raises(RuntimeError, match="use-after-release"):
        _poisoned_event_fired()


def test_harvest_poisons_callback_under_flag(monkeypatch):
    from repro.network.eventloop import Event

    class _Link:
        _compact_pending = transport.Link._compact_pending

    link = _Link()
    fired = Event(1.0, 0, 1, lambda: None, (), None)
    fired._loop = None  # executed: harvestable
    link._pending = [fired]
    link._free = []
    link._compact_threshold = 8

    monkeypatch.setattr(transport, "_ARENA_POISON", True)
    link._compact_pending()
    assert link._free == [fired]
    assert fired.callback is _poisoned_event_fired


# ----------------------------------------------------------------------
# end-to-end: poisoning is transparent on legal paths
# ----------------------------------------------------------------------
def _run_poisoned(code: str) -> str:
    env = {k: v for k, v in os.environ.items()
           if k not in ("REPRO_BACKEND", "REPRO_ARENA_POISON")}
    env["REPRO_ARENA_POISON"] = "1"
    env["PYTHONPATH"] = _SRC
    proc = subprocess.run([sys.executable, "-c", textwrap.dedent(code)],
                          env=env, capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout.strip()


def test_scenarios_run_identically_under_poison():
    # Every bundled app replays under poisoning with the same executed
    # count and final clock — recycling always re-arms before reuse.
    out = _run_poisoned("""
        import json
        from repro.chaos.scenarios import SCENARIOS
        from repro.network.backend import ARENA_POISON
        from repro.network.network import Network
        assert ARENA_POISON
        out = {}
        for app in sorted(SCENARIOS):
            net = Network(seed=7)
            SCENARIOS[app](net)
            out[app] = [net.loop.executed, net.loop.now]
        print(json.dumps(out, sort_keys=True))
        """)
    plain = subprocess.run(
        [sys.executable, "-c", textwrap.dedent("""
            import json
            from repro.chaos.scenarios import SCENARIOS
            from repro.network.network import Network
            out = {}
            for app in sorted(SCENARIOS):
                net = Network(seed=7)
                SCENARIOS[app](net)
                out[app] = [net.loop.executed, net.loop.now]
            print(json.dumps(out, sort_keys=True))
            """)],
        env={k: v for k, v in os.environ.items()
             if k not in ("REPRO_BACKEND", "REPRO_ARENA_POISON")}
        | {"PYTHONPATH": _SRC},
        capture_output=True, text=True)
    assert plain.returncode == 0, plain.stderr
    assert out == plain.stdout.strip()
