"""Unit tests for descriptors and selectors (Sec. VI-B)."""

import pytest

from repro.network.address import Address, AddressAllocator
from repro.protocol.codecs import G711, G726, NO_MEDIA
from repro.protocol.descriptor import (Descriptor, DescriptorFactory,
                                       DescriptorId, Selector)
from repro.protocol.errors import ProtocolError

ADDR = Address("10.0.0.1", 10000)


def make_desc(codecs=(G711, G726), version=0, origin="ep"):
    return Descriptor(DescriptorId(origin, version), ADDR, codecs)


def test_descriptor_requires_codecs():
    with pytest.raises(ProtocolError):
        Descriptor(DescriptorId("ep", 0), ADDR, ())


def test_descriptor_real_codecs_need_address():
    with pytest.raises(ProtocolError):
        Descriptor(DescriptorId("ep", 0), None, (G711,))


def test_descriptor_cannot_mix_real_and_no_media():
    with pytest.raises(ProtocolError):
        Descriptor(DescriptorId("ep", 0), ADDR, (G711, NO_MEDIA))


def test_no_media_descriptor():
    desc = Descriptor(DescriptorId("ep", 0), None, (NO_MEDIA,))
    assert desc.is_no_media


def test_selector_answers_matching():
    desc = make_desc()
    sel = Selector(answers=desc.id, address=ADDR, codec=G711)
    assert sel.answers_descriptor(desc)
    other = make_desc(version=1)
    assert not sel.answers_descriptor(other)


def test_selector_validation_accepts_offered_codec():
    desc = make_desc()
    Selector(answers=desc.id, address=ADDR, codec=G726).validate_against(desc)


def test_selector_validation_rejects_unoffered_codec():
    desc = make_desc(codecs=(G711,))
    sel = Selector(answers=desc.id, address=ADDR, codec=G726)
    with pytest.raises(ProtocolError):
        sel.validate_against(desc)


def test_selector_validation_rejects_wrong_descriptor():
    desc = make_desc()
    sel = Selector(answers=DescriptorId("ep", 9), address=ADDR, codec=G711)
    with pytest.raises(ProtocolError):
        sel.validate_against(desc)


def test_no_media_descriptor_only_accepts_no_media_selector():
    desc = Descriptor(DescriptorId("ep", 0), None, (NO_MEDIA,))
    bad = Selector(answers=desc.id, address=ADDR, codec=G711)
    with pytest.raises(ProtocolError):
        bad.validate_against(desc)
    good = Selector(answers=desc.id, address=ADDR, codec=NO_MEDIA)
    good.validate_against(desc)


def test_no_media_selector_is_always_legal_codec_wise():
    desc = make_desc()
    sel = Selector(answers=desc.id, address=None, codec=NO_MEDIA)
    sel.validate_against(desc)
    assert sel.is_no_media


def test_factory_increments_versions():
    factory = DescriptorFactory("ep")
    d0 = factory.descriptor(ADDR, (G711,))
    d1 = factory.no_media()
    d2 = factory.descriptor(ADDR, (G711,))
    assert (d0.id.version, d1.id.version, d2.id.version) == (0, 1, 2)
    assert d0.id.origin == "ep"


def test_factories_have_independent_counters():
    f1, f2 = DescriptorFactory("a"), DescriptorFactory("b")
    assert f1.no_media().id == DescriptorId("a", 0)
    assert f2.no_media().id == DescriptorId("b", 0)


def test_address_allocator_unique_and_even():
    alloc = AddressAllocator()
    host = alloc.host()
    addrs = list(alloc.allocate_many(host, 5))
    ports = [a.port for a in addrs]
    assert len(set(addrs)) == 5
    assert all(p % 2 == 0 for p in ports)
    assert alloc.host() != host
