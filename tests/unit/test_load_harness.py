"""Unit tests for the sharded call-load harness."""

import pytest

from repro.load import (LoadJob, TOPOLOGIES, default_jobs, run_jobs,
                        summarize)
from repro.load.harness import _run_job
from repro.load.topologies import BATCH, RELAY


# ----------------------------------------------------------------------
# job splitting
# ----------------------------------------------------------------------
def test_default_jobs_split_calls_exactly():
    jobs = default_jobs(apps=[RELAY], calls=10, shards=3)
    assert sum(j.calls for j in jobs) == 10
    assert [j.calls for j in jobs] == [4, 3, 3]  # remainder up front
    assert [j.shard for j in jobs] == [0, 1, 2]


def test_default_jobs_never_emit_empty_shards():
    jobs = default_jobs(apps=[RELAY], calls=2, shards=5)
    assert len(jobs) == 2
    assert all(j.calls == 1 for j in jobs)


def test_default_jobs_give_every_shard_its_own_seed():
    jobs = default_jobs(apps=[RELAY, "pbx"], calls=9, shards=3, seed=5)
    by_app = {}
    for j in jobs:
        by_app.setdefault(j.app, []).append(j.seed)
    for seeds in by_app.values():
        assert len(set(seeds)) == len(seeds)
    # Shard seeds are a function of (seed, shard), identical across apps
    # — the topology name is the distinguishing input.
    assert by_app[RELAY] == by_app["pbx"]


def test_default_jobs_reject_unknown_topology_and_bad_counts():
    with pytest.raises(KeyError):
        default_jobs(apps=["no-such-app"], calls=10)
    with pytest.raises(ValueError):
        default_jobs(calls=0)
    with pytest.raises(ValueError):
        default_jobs(calls=1, shards=0)


def test_topologies_cover_relay_and_all_six_apps():
    from repro.chaos.scenarios import SCENARIOS
    assert set(TOPOLOGIES) == {RELAY} | set(SCENARIOS)


# ----------------------------------------------------------------------
# driving shards
# ----------------------------------------------------------------------
def test_relay_shard_drives_calls_and_collects_metrics():
    result = _run_job(LoadJob(app=RELAY, calls=7, seed=0, shard=0))
    assert result.error is None
    assert result.calls_done == 7
    assert result.executed > 0
    assert result.signals_sent > 0
    assert len(result.setup_sim) == 7
    assert len(result.setup_wall) == 7
    counters = result.metrics["counters"]
    assert counters["calls.completed"] == 7
    assert counters["signals.sent"] == result.signals_sent
    hist = result.metrics["histograms"]["call.setup.wall_seconds"]
    assert hist["count"] == 7
    assert hist["p90"] >= hist["p50"] > 0


def test_relay_shard_is_deterministic_modulo_wall_clock():
    a = _run_job(LoadJob(app=RELAY, calls=5, seed=3, shard=0))
    b = _run_job(LoadJob(app=RELAY, calls=5, seed=3, shard=0))
    assert (a.executed, a.signals_sent, a.sim_time, a.setup_sim) == \
        (b.executed, b.signals_sent, b.sim_time, b.setup_sim)


def test_relay_best_window_rate_needs_a_full_window():
    small = _run_job(LoadJob(app=RELAY, calls=BATCH - 1, seed=0, shard=0))
    assert small.best_window_rate is None
    full = _run_job(LoadJob(app=RELAY, calls=BATCH, seed=0, shard=0))
    assert full.best_window_rate and full.best_window_rate > 0


def test_scenario_shard_runs_an_app_end_to_end():
    result = _run_job(LoadJob(app="click_to_dial", calls=2, seed=0,
                              shard=0))
    assert result.error is None
    assert result.calls_done == 2
    assert result.sim_time > 0  # scenarios advance simulated time
    assert result.metrics["counters"]["calls.completed"] == 2


def test_faulted_relay_shard_converges_in_robust_mode():
    result = _run_job(LoadJob(app=RELAY, calls=10, seed=0, shard=0,
                              plan="drop10+dup10"))
    assert result.error is None
    assert result.calls_done == 10
    # Loss forces retransmission delays: simulated setup time is no
    # longer uniformly zero.
    assert max(result.setup_sim) > 0


def test_shard_errors_travel_as_results_not_raises():
    # An unknown plan name explodes inside the worker; the harness must
    # return the verdict, not propagate.
    result = _run_job(LoadJob(app=RELAY, calls=1, seed=0, shard=0,
                              plan="no-such-plan"))
    assert result.error is not None
    assert "no-such-plan" in result.error
    assert result.calls_done == 0


def test_run_jobs_serial_matches_job_order():
    jobs = default_jobs(apps=[RELAY], calls=4, shards=2)
    results = run_jobs(jobs, processes=1)
    assert [(r.app, r.shard) for r in results] == \
        [(j.app, j.shard) for j in jobs]


def test_load_result_to_json_drops_raw_observations():
    result = _run_job(LoadJob(app=RELAY, calls=2, seed=0, shard=0))
    payload = result.to_json()
    assert "setup_sim" not in payload
    assert "setup_wall" not in payload
    assert payload["calls_done"] == 2


# ----------------------------------------------------------------------
# dead workers
# ----------------------------------------------------------------------
def _suicidal_topology(calls, seed, plan, metrics):
    """A topology whose worker dies mid-run (stand-in for an OOM kill
    or segfault): no exception, no result, just a vanished process."""
    import os
    import signal
    import time
    # Give sibling shards a head start so their results are already
    # home when this worker takes the pool down.
    time.sleep(0.5)
    os.kill(os.getpid(), signal.SIGKILL)


def test_dead_shard_yields_tombstone_not_a_hang(monkeypatch):
    """Regression: a worker killed mid-run used to hang the whole
    harness inside ``Pool.map``.  Per-job futures must surface the
    death as an error tombstone next to the surviving shards' real
    results, and the run must summarize not-ok."""
    monkeypatch.setitem(TOPOLOGIES, "killer", _suicidal_topology)
    jobs = [LoadJob(app=RELAY, calls=2, seed=0, shard=0),
            LoadJob(app="killer", calls=1, seed=0, shard=1)]
    results = run_jobs(jobs, processes=2)
    assert len(results) == 2
    by_app = {r.app: r for r in results}
    dead = by_app["killer"]
    assert dead.error is not None and "died" in dead.error
    assert dead.calls_done == 0
    survivor = by_app[RELAY]
    assert survivor.error is None and survivor.calls_done == 2
    summary = summarize(results, wall_elapsed=1.0)
    assert summary["ok"] is False
    assert summary["errors"] == [
        {"app": "killer", "shard": 1, "error": dead.error}]
    # The survivor's numbers still aggregate: partial results, not an
    # all-or-nothing failure.
    assert summary["calls_done"] == 2


def test_dead_shard_tombstone_shape():
    from repro.load.harness import _dead_shard_result
    job = LoadJob(app=RELAY, calls=5, seed=3, shard=2)
    tomb = _dead_shard_result(job)
    assert (tomb.app, tomb.shard, tomb.seed) == (RELAY, 2, 3)
    assert tomb.calls_done == 0 and tomb.metrics == {}
    assert "died" in tomb.error
    assert tomb.to_json()["error"] == tomb.error


# ----------------------------------------------------------------------
# summarizing
# ----------------------------------------------------------------------
def test_summarize_aggregates_shards_and_merges_percentiles():
    jobs = default_jobs(apps=[RELAY], calls=6, shards=2)
    results = run_jobs(jobs, processes=1)
    summary = summarize(results, wall_elapsed=2.0)
    assert summary["ok"] is True
    assert summary["calls_done"] == 6
    assert summary["calls_per_sec"] == 3.0
    assert summary["setup_sim_seconds"]["count"] == 6
    assert summary["setup_wall_seconds"]["p95"] is not None
    assert summary["per_app"][RELAY]["shards"] == 2


def test_summarize_reports_shard_errors():
    results = run_jobs([LoadJob(app=RELAY, calls=1, seed=0, shard=0,
                                plan="no-such-plan")], processes=1)
    summary = summarize(results, wall_elapsed=1.0)
    assert summary["ok"] is False
    assert summary["errors"][0]["app"] == RELAY
