"""Unit tests for the flowlink (Fig. 12 state matching, utd logic)."""

import pytest

from repro import AUDIO, Network, VIDEO
from repro.protocol.errors import PreconditionError
from repro.semantics import both_flowing, trace_path


@pytest.fixture
def rig():
    """Device A -- box -- device C, with C auto-accepting."""
    net = Network(seed=2)
    a = net.device("A")
    c = net.device("C", auto_accept=True)
    box = net.box("srv")
    ch_a = net.channel(a, box)     # A initiates toward the server
    ch_c = net.channel(box, c)     # the server initiates toward C
    sa = ch_a.end_for(box).slot()  # box slot toward A
    sc = ch_c.end_for(box).slot()  # box slot toward C
    return net, a, c, box, sa, sc


def test_link_forwards_open_end_to_end(rig):
    net, a, c, box, sa, sc = rig
    box.flow_link(sa, sc)
    a.open(a.channel_ends[0].slot(), AUDIO)
    net.settle()
    assert sa.is_flowing and sc.is_flowing
    path = trace_path(sa)
    assert both_flowing(path)
    assert net.plane.two_way(a, c)


def test_link_created_after_one_side_flowing(rig):
    # Fig. 6's busyTone state: 1a is flowing, Ta is closed; the flowlink
    # "will match the states of these two slots by opening Ta".
    net, a, c, box, sa, sc = rig
    box.hold_slot(sa)
    a.open(a.channel_ends[0].slot(), AUDIO)
    net.settle()
    assert sa.is_flowing and sc.is_closed
    box.flow_link(sa, sc)
    net.settle()
    assert sc.is_flowing
    assert both_flowing(trace_path(sa))
    assert net.plane.two_way(a, c)


def test_bias_toward_flow_not_toward_close(rig):
    # "it will attempt to get s2 to flowing rather than closing s1."
    net, a, c, box, sa, sc = rig
    box.hold_slot(sa)
    a.open(a.channel_ends[0].slot(), AUDIO)
    net.settle()
    closes_before = sa.signals_sent
    box.flow_link(sa, sc)
    net.settle()
    assert sa.is_flowing  # never closed


def test_environment_close_propagates(rig):
    net, a, c, box, sa, sc = rig
    box.flow_link(sa, sc)
    a_slot = a.channel_ends[0].slot()
    a.open(a_slot, AUDIO)
    net.settle()
    a.close(a_slot)
    net.settle()
    assert sa.is_closed and sc.is_closed
    assert c.ports()[0].slot.is_closed
    assert net.plane.silent(a) and net.plane.silent(c)


def test_reopen_through_link_after_close(rig):
    net, a, c, box, sa, sc = rig
    box.flow_link(sa, sc)
    a_slot = a.channel_ends[0].slot()
    a.open(a_slot, AUDIO)
    net.settle()
    a.close(a_slot)
    net.settle()
    a.open(a_slot, AUDIO)
    net.settle()
    assert both_flowing(trace_path(sa))
    assert net.plane.two_way(a, c)


def test_medium_mismatch_raises(rig):
    net, a, c, box, sa, sc = rig
    box.hold_slot(sa)
    box.hold_slot(sc)
    a.open(a.channel_ends[0].slot(), AUDIO)
    net.settle()
    # Make sc carry video by opening it from C's side.
    c_slot = c.channel_ends[0].slot()
    c.auto_accept = False
    c.open(c_slot, VIDEO)
    net.settle()
    assert sc.medium == VIDEO and sa.medium == AUDIO
    with pytest.raises(PreconditionError):
        box.flow_link(sa, sc)


def test_utd_flags_after_relink(rig):
    net, a, c, box, sa, sc = rig
    link = box.flow_link(sa, sc)
    a.open(a.channel_ends[0].slot(), AUDIO)
    net.settle()
    assert link.is_up_to_date(sa) and link.is_up_to_date(sc)


def test_mute_modify_propagates_end_to_end(rig):
    net, a, c, box, sa, sc = rig
    box.flow_link(sa, sc)
    a_slot = a.channel_ends[0].slot()
    a.open(a_slot, AUDIO)
    net.settle()
    assert net.plane.two_way(a, c)
    # A mutes its microphone: C keeps talking, A stops sending.
    a.modify(a_slot, mute_out=True)
    net.settle()
    assert not net.plane.flow_exists(a, c)
    assert net.plane.flow_exists(c, a)
    assert both_flowing(trace_path(sa))
    # and unmutes again.
    a.modify(a_slot, mute_out=False)
    net.settle()
    assert net.plane.two_way(a, c)


def test_mute_in_propagates_descriptor_change(rig):
    net, a, c, box, sa, sc = rig
    box.flow_link(sa, sc)
    a_slot = a.channel_ends[0].slot()
    a.open(a_slot, AUDIO)
    net.settle()
    a.modify(a_slot, mute_in=True)  # A refuses inbound media
    net.settle()
    assert not net.plane.flow_exists(c, a)
    assert net.plane.flow_exists(a, c)
    assert both_flowing(trace_path(sa))


def test_stale_selectors_discarded_not_forwarded(rig):
    net, a, c, box, sa, sc = rig
    link = box.flow_link(sa, sc)
    a.open(a.channel_ends[0].slot(), AUDIO)
    net.settle()
    assert link.discarded_selects >= 0  # baseline
    # Every descriptor that reached an endpoint got a fresh selector;
    # convergence means the last selector each endpoint received answers
    # its current descriptor.
    assert both_flowing(trace_path(sa))


def test_relink_switch_between_two_callees():
    """The PBX pattern: switch A's slot between B and C."""
    net = Network(seed=3)
    a = net.device("A")
    b = net.device("B", auto_accept=True)
    c = net.device("C", auto_accept=True)
    box = net.box("pbx")
    ch_a = net.channel(a, box)
    ch_b = net.channel(box, b)
    ch_c = net.channel(box, c)
    sa = ch_a.end_for(box).slot()
    sb = ch_b.end_for(box).slot()
    sc = ch_c.end_for(box).slot()
    box.flow_link(sa, sb)
    a.open(a.channel_ends[0].slot(), AUDIO)
    net.settle()
    assert net.plane.two_way(a, b)
    # Switch: link A to C, hold B.
    box.flow_link(sa, sc)
    box.hold_slot(sb)
    net.settle()
    assert net.plane.two_way(a, c)
    assert not net.plane.flow_exists(a, b)
    assert not net.plane.flow_exists(b, a)
    assert both_flowing(trace_path(sa))
    # Switch back.
    box.flow_link(sa, sb)
    box.hold_slot(sc)
    net.settle()
    assert net.plane.two_way(a, b)
    assert not net.plane.flow_exists(c, a)
    assert both_flowing(trace_path(sa))


def test_two_flowlinks_in_series():
    """A -- box1 -- box2 -- C: a path with two flowlinks."""
    net = Network(seed=4)
    a = net.device("A")
    c = net.device("C", auto_accept=True)
    b1 = net.box("srv1")
    b2 = net.box("srv2")
    ch_a = net.channel(a, b1)
    ch_mid = net.channel(b1, b2)
    ch_c = net.channel(b2, c)
    b1.flow_link(ch_a.end_for(b1).slot(), ch_mid.end_for(b1).slot())
    b2.flow_link(ch_mid.end_for(b2).slot(), ch_c.end_for(b2).slot())
    a.open(a.channel_ends[0].slot(), AUDIO)
    net.settle()
    path = trace_path(ch_a.end_for(b1).slot())
    assert path.hops == 3
    assert len(path.flowlinks) == 2
    assert both_flowing(path)
    assert net.plane.two_way(a, c)


def test_concurrent_relink_two_servers_converges():
    """The Fig. 13 situation: two servers change linkage concurrently."""
    net = Network(seed=5)
    a = net.device("A")
    b = net.device("B", auto_accept=True)
    c = net.device("C", auto_accept=True)
    v = net.device("V", auto_accept=True)
    pbx = net.box("pbx")
    pc = net.box("pc")
    ch_a = net.channel(a, pbx)
    ch_b = net.channel(pbx, b)
    ch_mid = net.channel(pc, pbx)      # PC -- PBX
    ch_c = net.channel(pc, c)          # wait: PC serves C
    ch_v = net.channel(pc, v)
    sa = ch_a.end_for(pbx).slot()
    sb = ch_b.end_for(pbx).slot()
    s_mid_pbx = ch_mid.end_for(pbx).slot()
    s_mid_pc = ch_mid.end_for(pc).slot()
    sc = ch_c.end_for(pc).slot()
    sv = ch_v.end_for(pc).slot()
    # Snapshot 3: PBX has A linked to B; PC has C linked to V.
    pbx.flow_link(sa, sb)
    pbx.hold_slot(s_mid_pbx)
    pc.flow_link(sc, sv)
    a.open(a.channel_ends[0].slot(), AUDIO)
    c.auto_accept = False
    c_slot = ch_c.end_for(c).slot()
    c.open(c_slot, AUDIO)
    net.settle()
    assert net.plane.two_way(a, b)
    assert net.plane.two_way(c, v)
    # Concurrently: PC relinks C to the path toward A, and the PBX
    # relinks A to the path toward C.
    pc.flow_link(sc, s_mid_pc)
    pc.hold_slot(sv)
    pbx.flow_link(sa, s_mid_pbx)
    pbx.hold_slot(sb)
    net.settle()
    path = trace_path(sa)
    assert len(path.flowlinks) == 2
    assert both_flowing(path)
    assert net.plane.two_way(a, c)
    assert net.plane.silent(v)
