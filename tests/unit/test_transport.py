"""Unit tests for links (FIFO + latency) and nodes (processing cost)."""

from repro.network.eventloop import EventLoop
from repro.network.latency import FixedLatency, UniformLatency
from repro.network.node import Node
from repro.network.transport import Link


def collect(link_end):
    out = []
    link_end.set_receiver(out.append)
    return out


def test_duplex_delivery():
    loop = EventLoop()
    link = Link(loop, FixedLatency(0.1))
    a, b = link.ends
    got_a, got_b = collect(a), collect(b)
    a.send("to-b")
    b.send("to-a")
    loop.run()
    assert got_b == ["to-b"]
    assert got_a == ["to-a"]


def test_latency_applied():
    loop = EventLoop()
    link = Link(loop, FixedLatency(0.25))
    a, b = link.ends
    times = []
    b.set_receiver(lambda m: times.append(loop.now))
    a.send("x")
    loop.run()
    assert times == [0.25]


def test_fifo_order_fixed_latency():
    loop = EventLoop()
    link = Link(loop, FixedLatency(0.05))
    a, b = link.ends
    got = collect(b)
    for i in range(20):
        a.send(i)
    loop.run()
    assert got == list(range(20))


def test_fifo_order_preserved_under_jitter():
    loop = EventLoop(seed=3)
    link = Link(loop, UniformLatency(0.01, 0.5))
    a, b = link.ends
    got = collect(b)
    for i in range(200):
        a.send(i)
    loop.run()
    assert got == list(range(200))


def test_fifo_horizons_are_per_direction():
    loop = EventLoop(seed=3)
    link = Link(loop, UniformLatency(0.01, 0.5))
    a, b = link.ends
    got_a, got_b = collect(a), collect(b)
    for i in range(50):
        a.send(("ab", i))
        b.send(("ba", i))
    loop.run()
    assert got_b == [("ab", i) for i in range(50)]
    assert got_a == [("ba", i) for i in range(50)]


def test_torn_down_link_drops_messages():
    loop = EventLoop()
    link = Link(loop, FixedLatency(0.1))
    a, b = link.ends
    got = collect(b)
    a.send("in-flight")
    link.tear_down()
    a.send("after")
    loop.run()
    assert got == []


def test_tear_down_cancels_in_flight_events():
    """Regression: tear_down used to leave the pending delivery events
    on the loop, where they fired into the dead link."""
    loop = EventLoop()
    link = Link(loop, FixedLatency(0.5))
    a, b = link.ends
    got = collect(b)
    for i in range(3):
        a.send(i)
    assert link.in_flight() == 3
    assert loop.pending() == 3
    link.tear_down()
    assert link.in_flight() == 0
    # Cancelled outright, not merely ignored at delivery time: the loop
    # is already quiescent, with no zombie events left to execute.
    assert loop.pending() == 0
    assert loop.run_until_quiescent() == 0
    assert got == []


def test_drop_in_flight_reports_live_count():
    loop = EventLoop()
    link = Link(loop, FixedLatency(0.5))
    a, b = link.ends
    collect(b)
    a.send("one")
    a.send("two")
    assert link._drop_in_flight() == 2
    assert link._drop_in_flight() == 0  # idempotent


def test_pending_list_is_compacted():
    """Delivered events are pruned so memory stays O(in-flight)."""
    loop = EventLoop()
    link = Link(loop, FixedLatency(0.0))
    a, b = link.ends
    collect(b)
    for i in range(100):
        a.send(i)
        loop.run()  # deliver immediately; the entry is now dead
    from repro.network.transport import _PENDING_COMPACT
    assert len(link._pending) <= _PENDING_COMPACT
    assert link.in_flight() == 0


def test_node_zero_cost_runs_in_order():
    loop = EventLoop()
    node = Node(loop, cost=0.0)
    out = []
    node.enqueue(out.append, 1)
    node.enqueue(out.append, 2)
    loop.run()
    assert out == [1, 2]


def test_node_cost_serializes_stimuli():
    loop = EventLoop()
    node = Node(loop, cost=0.02)
    times = []
    for _ in range(3):
        node.enqueue(lambda: times.append(loop.now))
    loop.run()
    assert times == [0.02, 0.04, 0.06]


def test_node_cost_applies_after_idle_gap():
    loop = EventLoop()
    node = Node(loop, cost=0.02)
    times = []
    node.enqueue(lambda: times.append(loop.now))
    loop.run()
    loop.schedule_at(1.0, node.enqueue, lambda: times.append(loop.now))
    loop.run()
    assert times == [0.02, 1.02]


def test_node_handler_exception_does_not_wedge_queue():
    loop = EventLoop()
    node = Node(loop, cost=0.0)
    out = []

    def boom():
        raise RuntimeError("kaboom")

    node.enqueue(boom)
    node.enqueue(out.append, "after")
    try:
        loop.run()
    except RuntimeError:
        loop.run()
    assert out == ["after"]


def test_node_timer_enqueues_stimulus():
    loop = EventLoop()
    node = Node(loop, cost=0.01)
    times = []
    node.set_timer(0.5, lambda: times.append(loop.now))
    loop.run()
    assert times == [0.51]


def test_node_timer_cancel():
    loop = EventLoop()
    node = Node(loop, cost=0.0)
    out = []
    timer = node.set_timer(0.5, out.append, "x")
    timer.cancel()
    loop.run()
    assert out == []


def test_node_handled_counter():
    loop = EventLoop()
    node = Node(loop, cost=0.0)
    node.enqueue(lambda: None)
    node.enqueue(lambda: None)
    loop.run()
    assert node.handled == 2
    assert node.idle


# ----------------------------------------------------------------------
# the transmit-hook chain
# ----------------------------------------------------------------------
def test_transmit_hook_sees_and_forwards_messages():
    loop = EventLoop()
    link = Link(loop, FixedLatency(0.0))
    a, b = link.ends
    got = collect(b)
    seen = []

    def spy(origin, message, forward):
        seen.append((origin, message))
        forward(origin, message)

    link.add_transmit_hook(spy)
    a.send("hello")
    loop.run()
    assert got == ["hello"]
    assert seen == [(a, "hello")]


def test_transmit_hook_can_suppress_delivery():
    loop = EventLoop()
    link = Link(loop, FixedLatency(0.0))
    a, b = link.ends
    got = collect(b)

    def black_hole(origin, message, forward):
        pass  # never forwards

    link.add_transmit_hook(black_hole)
    a.send("lost")
    loop.run()
    assert got == []
    # The base transmit never ran, so nothing was counted as sent.
    assert link.sent == 0


def test_last_appended_hook_is_outermost():
    loop = EventLoop()
    link = Link(loop, FixedLatency(0.0))
    a, b = link.ends
    collect(b)
    order = []

    def mk(name):
        def hook(origin, message, forward):
            order.append(name)
            forward(origin, message)
        return hook

    link.add_transmit_hook(mk("first"))
    link.add_transmit_hook(mk("second"))
    a.send("x")
    loop.run()
    assert order == ["second", "first"]


def test_innermost_hook_runs_last():
    loop = EventLoop()
    link = Link(loop, FixedLatency(0.0))
    a, b = link.ends
    collect(b)
    order = []

    def mk(name):
        def hook(origin, message, forward):
            order.append(name)
            forward(origin, message)
        return hook

    link.add_transmit_hook(mk("observer"))
    # An adversary installed innermost never shadows observers, no
    # matter how late it arrives (the FaultyLink contract).
    link.add_transmit_hook(mk("adversary"), innermost=True)
    a.send("x")
    loop.run()
    assert order == ["observer", "adversary"]


def test_remove_transmit_hook_restores_chain():
    loop = EventLoop()
    link = Link(loop, FixedLatency(0.0))
    a, b = link.ends
    got = collect(b)

    def black_hole(origin, message, forward):
        pass

    link.add_transmit_hook(black_hole)
    link.remove_transmit_hook(black_hole)
    link.remove_transmit_hook(black_hole)  # idempotent
    a.send("through")
    loop.run()
    assert got == ["through"]


def test_hook_may_rewrite_messages():
    loop = EventLoop()
    link = Link(loop, FixedLatency(0.0))
    a, b = link.ends
    got = collect(b)

    def upper(origin, message, forward):
        forward(origin, message.upper())

    link.add_transmit_hook(upper)
    a.send("quiet")
    loop.run()
    assert got == ["QUIET"]


def test_msc_tracer_sees_traffic_fault_plan_drops():
    # Observer hooks (appended, outermost) must see offered load even
    # when an innermost fault hook later drops every message.
    from repro import AUDIO, FaultPlan, Network
    from repro.tools.msc import SignalTracer

    net = Network(seed=1, faults=FaultPlan(name="all-drop", drop=1.0))
    a = net.device("a")
    b = net.device("b", auto_accept=True)
    ch = net.channel(a, b)
    tracer = SignalTracer(net, channels=[ch])
    a.open(ch.initiator_end.slot(), AUDIO)
    net.run(5.0)
    offered = [m for m in tracer.messages if "open" in m.label]
    assert offered, "tracer must record signals the fault plan dropped"
    assert net.fault_stats.dropped > 0
