"""The analyzer self-hosts: every bundled app, protocol declaration,
and verification model lints clean."""

import pytest

from repro.staticcheck import all_targets, app_targets, model_targets

TARGETS = all_targets()


def test_catalog_names_are_unique():
    names = [t.name for t in TARGETS]
    assert len(names) == len(set(names))


def test_catalog_covers_all_six_apps_and_twelve_models():
    names = {t.name for t in TARGETS}
    for app in ("click_to_dial", "prepaid", "pbx", "conference",
                "collab_tv", "features-dnd", "features-voicemail"):
        assert any(n == "apps/%s" % app for n in names), app
    assert sum(1 for n in names if n.startswith("models/")) == 12


@pytest.mark.parametrize("target", TARGETS,
                         ids=[t.name for t in TARGETS])
def test_target_is_clean(target):
    report = target.report()
    assert report.clean, "\n".join(d.format() for d in report.active)


def test_prepaid_suppression_is_exercised():
    """The prepaid waiver is not dead weight: RC102 really fires and is
    really suppressed, with its reason on record."""
    target = next(t for t in app_targets() if t.name == "apps/prepaid")
    report = target.report()
    assert [d.code for d in report.suppressed] == ["RC102"]
    assert "design" in report.suppressions[0].reason


def test_every_suppression_matches_a_finding():
    """No stale waivers: each suppression in the catalog suppresses at
    least one actual diagnostic."""
    for target in TARGETS:
        report = target.report()
        for suppression in report.suppressions:
            assert any(d.code == suppression.code
                       for d in report.suppressed), (
                "%s suppresses %s but nothing fires"
                % (target.name, suppression.code))


def test_model_targets_match_sweep_grid():
    from repro.verification import all_models
    expected = {"models/%s" % m.key for m in all_models()}
    assert {t.name for t in model_targets()} == expected
