"""The extraction layer: guard descriptions, reachability, media
evidence, and Program extraction."""

from repro.core.predicates import (all_of, always, any_of, describe_guard,
                                   is_flowing, is_opened, negate)
from repro.core.program import (END, Program, State, Transition,
                                hold_slot, on_channel_down, on_meta,
                                open_slot)
from repro.network.network import Network
from repro.protocol.codecs import AUDIO, VIDEO
from repro.staticcheck import (conjunctive_slot_atoms, extract_program,
                               extract_states, slot_names_in_guard)


def test_atoms_describe_themselves():
    assert describe_guard(is_flowing("x")) == \
        ("atom", ("slot", "flowing", "x"))
    assert describe_guard(always) == ("atom", ("always",))


def test_combinators_describe_operands():
    guard = all_of(is_flowing("x"), any_of(is_opened("y"),
                                           negate(is_flowing("z"))))
    desc = describe_guard(guard)
    assert desc[0] == "all"
    assert desc[1] == ("atom", ("slot", "flowing", "x"))
    assert desc[2][0] == "any"


def test_opaque_guards_never_compare_equal():
    guard_a = lambda p: True  # noqa: E731
    guard_b = lambda p: True  # noqa: E731
    desc_a = describe_guard(guard_a)
    desc_b = describe_guard(guard_b)
    assert desc_a[0] == "opaque" and desc_b[0] == "opaque"
    assert desc_a != desc_b


def test_same_opaque_guard_is_stable():
    guard = lambda p: True  # noqa: E731
    assert describe_guard(guard) == describe_guard(guard)


def test_conjunctive_atoms_skip_disjuncts():
    guard = all_of(is_flowing("x"),
                   any_of(is_flowing("y"), is_opened("z")))
    atoms = conjunctive_slot_atoms(describe_guard(guard))
    assert atoms == [("flowing", "x")]


def test_slot_names_cover_all_nesting():
    guard = any_of(is_flowing("a"), negate(all_of(is_opened("b"),
                                                  is_flowing("c"))))
    assert slot_names_in_guard(describe_guard(guard)) == \
        {"a", "b", "c"}


def _tiny_graph():
    states = {
        "start": State(goals=(open_slot("x", AUDIO),),
                       transitions=(
                           Transition(is_flowing("x"), "up"),
                           Transition(on_channel_down(), END),)),
        "up": State(goals=(hold_slot("x"),),
                    transitions=(
                        Transition(on_meta("app", "bye"), END),)),
    }
    return extract_states("tiny", states, "start", slots=("x",),
                          media={"y": VIDEO})


def test_reachability_and_termination():
    graph = _tiny_graph()
    assert graph.reachable() == {"start", "up"}
    assert graph.can_terminate()


def test_media_evidence_merges_declared_and_open():
    graph = _tiny_graph()
    evidence = graph.media_evidence()
    assert evidence["x"] == {AUDIO: ["start"]}
    assert evidence["y"] == {VIDEO: ["<declared>"]}
    assert graph.medium_of("x") == AUDIO
    assert graph.medium_of("unknown") is None


def test_extract_program_uses_declared_slots():
    net = Network(seed=7)
    box = net.box("srv")
    dev = net.device("dev", auto_accept=True)
    ch = net.channel(box, dev)
    box.name_slot("s", ch.end_for(box).slot())
    program = Program(box, {
        "only": State(goals=(hold_slot("s"),),
                      transitions=(Transition(on_channel_down(), END),)),
    }, initial="only")
    graph = extract_program("rigged", program)
    assert graph.initial == "only"
    assert "s" in graph.declared_slots
    assert graph.states["only"].transitions[0].guard[1][0] == "down"
