"""Cross-validation: the static analyzer against the model-checking
engine (Sec. VIII-A).

The RC601 rule claims to predict, from goal semantics alone, which
temporal property a signaling path can satisfy.  The sweep engine
actually explores the state space.  These tests pin the two together:

* on every bundled model, both agree the spec is right (RC601 silent,
  sweep passes — the sweep side is continuously re-established by
  ``tests/unit/test_verification.py::test_path_model_passes_safety_and_
  spec``);
* on a deliberately mis-specified model, both flag it: the sweep finds
  a property violation at exploration time AND the linter reports RC601
  without exploring anything.

Every sweep-flagged property violation therefore triggers a static
diagnostic; the bundled catalog carries no suppression for RC601.
"""

import pytest

from repro.staticcheck import all_targets, check_model, expected_property
from repro.verification import (PATH_TYPES, all_models, build_model,
                                verify_model)

PROPERTY_KINDS = ("stability-closed", "stability-no-flow",
                  "recurrence-flowing", "closed-or-flowing")


def test_every_bundled_model_is_statically_clean():
    for model in all_models():
        assert check_model(model) == [], model.key


def test_static_spec_table_matches_path_types():
    """The derivation in ``expected_property`` reproduces the paper's
    spec table (it is derived from goal semantics, not copied)."""
    for left, right, prop in PATH_TYPES.values():
        assert expected_property(left, right) == prop
        assert expected_property(right, left) == prop  # symmetric


def test_expected_property_rejects_unknown_goals():
    with pytest.raises(ValueError):
        expected_property("open", "frobnicate")


@pytest.mark.parametrize("path_type", sorted(PATH_TYPES))
def test_misassigned_spec_is_flagged_statically(path_type):
    """Assigning any *other* property kind to a path type draws RC601."""
    right_kind = PATH_TYPES[path_type][2]
    for kind in PROPERTY_KINDS:
        model = build_model(path_type)
        model.property_kind = kind
        found = check_model(model)
        if kind == right_kind:
            assert found == []
        else:
            assert [d.code for d in found] == ["RC601"]


def test_sweep_and_linter_agree_on_a_broken_spec():
    """The non-vacuous case: a close/open path checked for
    recurrence-flowing.  The engine explores and finds the property
    violated; the linter predicts exactly that without exploring."""
    model = build_model("CO")
    model.property_kind = "recurrence-flowing"

    static = check_model(model)
    assert [d.code for d in static] == ["RC601"]
    assert "recurrence-flowing" in static[0].message

    result = verify_model(model, max_states=300_000)
    assert result.safety_ok          # the protocol itself is fine
    assert not result.property_ok    # the mis-assigned spec fails


def test_catalog_has_no_rc601_waiver():
    """No bundled model is allowed to ship with a mismatched spec."""
    for target in all_targets():
        assert all(s.code != "RC601" for s in target.suppressions), \
            target.name
