"""``python -m repro lint``: output formats and normalized exit codes
(0 clean / 1 findings / 2 usage error)."""

import io
import json

import pytest

from repro.__main__ import main as repro_main
from repro.staticcheck.cli import main as lint_main


def test_clean_catalog_exits_zero():
    out = io.StringIO()
    assert lint_main([], stream=out) == 0
    assert "0 error(s), 0 warning(s)" in out.getvalue()


def test_fixtures_exit_one():
    out = io.StringIO()
    assert lint_main(["--fixtures"], stream=out) == 1
    assert "broken-RC101" in out.getvalue()


def test_unknown_target_exits_two():
    assert lint_main(["--target", "no/such"], stream=io.StringIO()) == 2


def test_bad_flag_exits_two():
    with pytest.raises(SystemExit) as err:
        lint_main(["--bogus"], stream=io.StringIO())
    assert err.value.code == 2


def test_list_names_targets():
    out = io.StringIO()
    assert lint_main(["--list"], stream=out) == 0
    names = out.getvalue().split()
    assert "apps/pbx" in names and "models/CO+link" in names


def test_single_target_selection():
    out = io.StringIO()
    assert lint_main(["--target", "apps/pbx"], stream=out) == 0
    text = out.getvalue()
    assert "apps/pbx" in text and "1 target(s)" in text


def test_json_output_shape():
    out = io.StringIO()
    assert lint_main(["--format", "json", "--target", "apps/prepaid"],
                     stream=out) == 0
    payload = json.loads(out.getvalue())
    assert payload["summary"]["targets"] == 1
    (target,) = payload["targets"]
    assert target["name"] == "apps/prepaid"
    assert target["clean"] is True
    assert target["suppressed"][0]["code"] == "RC102"
    assert target["suppressions"][0]["reason"]


def test_json_fixture_output_reports_findings():
    out = io.StringIO()
    assert lint_main(["--format", "json", "--fixtures"],
                     stream=out) == 1
    payload = json.loads(out.getvalue())
    assert payload["summary"]["errors"] > 0
    codes = {d["code"] for t in payload["targets"]
             for d in t["diagnostics"]}
    assert "RC201" in codes and "RC601" in codes


def test_main_dispatches_lint(capsys):
    assert repro_main(["lint", "--target", "apps/conference"]) == 0
    assert "apps/conference" in capsys.readouterr().out


def test_main_lint_propagates_failure_exit(capsys):
    assert repro_main(["lint", "--fixtures"]) == 1
    capsys.readouterr()


def test_main_usage_error_exits_two():
    with pytest.raises(SystemExit) as err:
        repro_main(["frobnicate"])
    assert err.value.code == 2
