"""Every diagnostic code fires on its deliberately-broken fixture,
at the expected state and slot."""

import pytest

# The registry is shared with the runtime auditor (RC8xx); importing
# it here makes the registered-code set deterministic regardless of
# which test module loaded first.
from repro.audit import AUDIT_CODES
from repro.staticcheck import CODES, all_fixtures

FIXTURES = all_fixtures()


def test_one_fixture_per_code():
    native = set(CODES) - set(AUDIT_CODES)
    assert sorted(f.code for f in FIXTURES) == sorted(native)


@pytest.mark.parametrize("fixture", FIXTURES,
                         ids=[f.name for f in FIXTURES])
def test_fixture_triggers_its_code(fixture):
    found = fixture.run()
    assert any(fixture.matches(d) for d in found), (
        "%s did not produce %s at state=%r slot=%r; got %s"
        % (fixture.name, fixture.code, fixture.state, fixture.slot,
           [d.format() for d in found]))


@pytest.mark.parametrize("fixture", FIXTURES,
                         ids=[f.name for f in FIXTURES])
def test_fixture_locations_are_exact(fixture):
    """The matching diagnostic carries the planted state/slot names."""
    matching = [d for d in fixture.run() if fixture.matches(d)]
    for diagnostic in matching:
        if fixture.state is not None:
            assert diagnostic.state == fixture.state
        if fixture.slot is not None:
            assert diagnostic.slot == fixture.slot
        assert diagnostic.code in CODES
        assert diagnostic.severity in ("error", "warning")
        assert diagnostic.format()  # renders without crashing


# ----------------------------------------------------------------------
# RC701: each documented escape hatch silences the rule
# ----------------------------------------------------------------------
def _rc701_states(extra_transitions=(), timeout=None):
    from repro.core.predicates import is_flowing
    from repro.core.program import (END, State, Transition,
                                    on_channel_down, open_slot,
                                    hold_slot)
    from repro.protocol.codecs import AUDIO
    dialing = State(goals=(open_slot("s", AUDIO),),
                    transitions=(Transition(is_flowing("s"), "talking"),)
                    + tuple(extra_transitions),
                    timeout=timeout)
    talking = State(goals=(hold_slot("s"),),
                    transitions=(Transition(on_channel_down(), END),))
    return {"dialing": dialing, "talking": talking}


def _rc701_codes(states):
    from repro.staticcheck.graph import extract_states
    from repro.staticcheck.rules import check_graph
    graph = extract_states("rc701-case", states, "dialing", slots=("s",))
    return [d.code for d in check_graph(graph)]


def test_rc701_silenced_by_slot_failed_transition():
    from repro.core.predicates import slot_failed
    from repro.core.program import Transition
    states = _rc701_states(
        extra_transitions=(Transition(slot_failed("s"), "talking"),))
    assert "RC701" not in _rc701_codes(states)


def test_rc701_silenced_by_is_closed_transition():
    from repro.core.predicates import is_closed
    from repro.core.program import Transition
    states = _rc701_states(
        extra_transitions=(Transition(is_closed("s"), "talking"),))
    assert "RC701" not in _rc701_codes(states)


def test_rc701_silenced_by_timeout():
    from repro.core.program import Timeout
    states = _rc701_states(timeout=Timeout(5.0, "talking"))
    assert "RC701" not in _rc701_codes(states)


def test_rc701_fires_without_escape():
    assert "RC701" in _rc701_codes(_rc701_states())
