"""Every diagnostic code fires on its deliberately-broken fixture,
at the expected state and slot."""

import pytest

from repro.staticcheck import CODES, all_fixtures

FIXTURES = all_fixtures()


def test_one_fixture_per_code():
    assert sorted(f.code for f in FIXTURES) == sorted(CODES)


@pytest.mark.parametrize("fixture", FIXTURES,
                         ids=[f.name for f in FIXTURES])
def test_fixture_triggers_its_code(fixture):
    found = fixture.run()
    assert any(fixture.matches(d) for d in found), (
        "%s did not produce %s at state=%r slot=%r; got %s"
        % (fixture.name, fixture.code, fixture.state, fixture.slot,
           [d.format() for d in found]))


@pytest.mark.parametrize("fixture", FIXTURES,
                         ids=[f.name for f in FIXTURES])
def test_fixture_locations_are_exact(fixture):
    """The matching diagnostic carries the planted state/slot names."""
    matching = [d for d in fixture.run() if fixture.matches(d)]
    for diagnostic in matching:
        if fixture.state is not None:
            assert diagnostic.state == fixture.state
        if fixture.slot is not None:
            assert diagnostic.slot == fixture.slot
        assert diagnostic.code in CODES
        assert diagnostic.severity in ("error", "warning")
        assert diagnostic.format()  # renders without crashing
