"""Edge-case tests: protocol corners, flowlink recovery paths, and
model-process spot checks.

Several of these encode corners discovered *by* the verification
substrate (model checking / property testing) during development, kept
here as regressions against the implementation.
"""

import pytest

from repro import AUDIO, Box, Network, VIDEO
from repro.protocol.codecs import NO_MEDIA
from repro.semantics import both_closed, both_flowing, trace_path


# ----------------------------------------------------------------------
# protocol corners
# ----------------------------------------------------------------------
def test_crossing_open_and_close_drained():
    """Regression (found by the model checker): an open arriving at a
    slot in `closing` is the crossing-open case and must be drained."""
    net = Network(seed=101)
    a = net.device("A")
    b = net.device("B")
    ch = net.channel(a, b)
    sa, sb = ch.end_for(a).slot(), ch.end_for(b).slot()
    a.open(sa, AUDIO)
    net.settle()                       # B is ringing (opened)
    # B opens... it can't (opened).  Drive the raw crossing instead:
    # B rejects at the same moment A re-launches after closing.
    a.close(sa)                        # A: opening -> can't... flowing? no
    net.settle()
    assert sa.is_closed and sb.is_closed


def test_crossing_open_close_at_slot_level():
    """The precise interleaving: both sides open, one immediately
    closes; the loser's open reaches a closing slot and is drained."""
    from repro.network.eventloop import EventLoop
    from repro.protocol.channel import SignalingChannel
    from repro.protocol.descriptor import DescriptorFactory
    from tests.unit.test_slot import Recorder

    loop = EventLoop()
    x, y = Recorder(loop, "x"), Recorder(loop, "y")
    ch = SignalingChannel(loop, x, y)
    sx, sy = ch.ends[0].slot(), ch.ends[1].slot()
    fx, fy = DescriptorFactory("x"), DescriptorFactory("y")
    sx.send_open(AUDIO, fx.no_media())   # x opens...
    sy.send_open(AUDIO, fy.no_media())   # ...y opens (crossing)...
    sx.send_close()                      # ...and x gives up at once.
    loop.run()
    # y's open reached x while closing: drained, not an error.
    assert sx.stale_drops >= 1
    assert sx.state == "closed"
    # y saw x's open (race loss, y is non-initiator) then x's close.
    assert sy.state == "closed"


def test_device_multi_tunnel_audio_and_video():
    net = Network(seed=102)
    a = net.device("A")
    b = net.device("B", auto_accept=True)
    ch = net.channel(a, b, tunnels=("audio", "video"))
    a.open(ch.end_for(a).slot("audio"), AUDIO)
    a.open(ch.end_for(a).slot("video"), VIDEO)
    net.settle()
    labels = net.plane.heard_by(b)
    assert "audio:A" in labels and "video:A" in labels
    # tunnels are independent: closing video leaves audio flowing.
    a.close(ch.end_for(a).slot("video"))
    net.settle()
    labels = net.plane.heard_by(b)
    assert "audio:A" in labels and "video:A" not in labels


def test_reject_then_reopen_same_tunnel():
    net = Network(seed=103)
    a = net.device("A")
    b = net.device("B")
    ch = net.channel(a, b)
    sa = ch.end_for(a).slot()
    a.open(sa, AUDIO)
    net.settle()
    b.decline()
    net.settle()
    assert sa.is_closed
    a.open(sa, AUDIO)
    net.settle()
    b.answer()
    net.settle()
    assert net.plane.two_way(a, b)


def test_move_before_flowing_is_harmless():
    net = Network(seed=104)
    a = net.device("A")
    b = net.device("B", auto_accept=True)
    ch = net.channel(a, b)
    sa = ch.end_for(a).slot()
    port = a.move(sa)          # move with the channel still closed
    a.open(sa, AUDIO)
    net.settle()
    assert net.plane.two_way(a, b)
    tx = [t for t in net.plane.transmissions() if t.port.endpoint is b][0]
    assert tx.target == port.address


# ----------------------------------------------------------------------
# flowlink recovery paths
# ----------------------------------------------------------------------
@pytest.fixture
def triangle():
    net = Network(seed=105)
    a = net.device("A")
    c = net.device("C", auto_accept=True)
    box = net.box("srv")
    ch_a = net.channel(a, box)
    ch_c = net.channel(box, c)
    return net, a, c, box, ch_a, ch_c


def test_flowlink_attach_while_one_side_closing(triangle):
    net, a, c, box, ch_a, ch_c = triangle
    sa = ch_a.end_for(box).slot()
    sc = ch_c.end_for(box).slot()
    # Get sc flowing then start closing it.
    box.open_slot(sc, AUDIO)
    box.hold_slot(sa)
    a.open(ch_a.end_for(a).slot(), AUDIO)
    net.settle()
    assert sa.is_flowing and sc.is_flowing
    box.close_slot(sc)     # close in progress...
    box.flow_link(sa, sc)  # ...but the program relinks immediately
    net.settle()
    # The flowlink reopened sc once its close completed (reopen flag).
    assert sa.is_flowing and sc.is_flowing
    assert both_flowing(trace_path(sa))
    assert net.plane.two_way(a, c)


def test_flowlink_placeholder_open_converges(triangle):
    """Link created while the live slot is still opening (not yet
    described): the open toward the other side carries a placeholder
    noMedia descriptor and a describe follows."""
    net, a, c, box, ch_a, ch_c = triangle
    sa = ch_a.end_for(box).slot()
    sc = ch_c.end_for(box).slot()
    a.open(ch_a.end_for(a).slot(), AUDIO)
    # Link *before* settling: sa is merely 'opened'... force earlier:
    box.flow_link(sa, sc)
    net.settle()
    c_port = c.ports()[0]
    assert both_flowing(trace_path(sa))
    assert net.plane.two_way(a, c)


def test_flowlink_close_propagates_from_opened_state(triangle):
    net, a, c, box, ch_a, ch_c = triangle
    sa = ch_a.end_for(box).slot()
    sc = ch_c.end_for(box).slot()
    box.flow_link(sa, sc)
    a_slot = ch_a.end_for(a).slot()
    a.open(a_slot, AUDIO)
    net.run(0.0)      # zero latency: everything settles immediately
    a.close(a_slot)   # A gives up
    net.settle()
    assert both_closed(trace_path(sa))
    assert net.plane.silent(c)


def test_flowlink_video_medium_forwarded(triangle):
    net, a, c, box, ch_a, ch_c = triangle
    sa = ch_a.end_for(box).slot()
    sc = ch_c.end_for(box).slot()
    box.flow_link(sa, sc)
    a.open(ch_a.end_for(a).slot(), VIDEO)
    net.settle()
    assert sc.medium == VIDEO
    assert "video:A" in net.plane.heard_by(c)


def test_server_only_path_hold_hold_stays_closed():
    net = Network(seed=106)
    b1, b2 = net.box("b1"), net.box("b2")
    ch = net.channel(b1, b2)
    b1.hold_slot(ch.end_for(b1).slot())
    b2.hold_slot(ch.end_for(b2).slot())
    net.settle()
    path = trace_path(ch.end_for(b1).slot())
    assert both_closed(path)  # the HH disjunction's closed branch


def test_server_only_path_open_hold_flows_muted():
    net = Network(seed=107)
    b1, b2 = net.box("b1"), net.box("b2")
    ch = net.channel(b1, b2)
    s1 = ch.end_for(b1).slot()
    b1.open_slot(s1, AUDIO)
    b2.hold_slot(ch.end_for(b2).slot())
    net.settle()
    path = trace_path(s1)
    assert both_flowing(path)   # flowing, muted both ways (noMedia)
    assert s1.local_descriptor.is_no_media
    assert s1.selector_received.is_no_media


# ----------------------------------------------------------------------
# model-process spot checks (conformance with the implementation)
# ----------------------------------------------------------------------
def test_model_endpoint_accept_emits_oack_then_select():
    from repro.verification.processes import EndpointProcess
    ep = EndpointProcess("R", "hold", out_queue=0, initiator=False)
    st = ep.initial()._replace(phase=2)
    outcomes = ep.receive(st, 0, ("open", ("L", 0)))
    assert len(outcomes) == 1
    new, sends = outcomes[0]
    assert new.slot == "flowing"
    assert [m[1][0] for m in sends] == ["oack", "select"]
    assert sends[1][1][1] == ("L", 0)   # the select answers the open


def test_model_closeslot_rejects_open():
    from repro.verification.processes import EndpointProcess
    ep = EndpointProcess("R", "close", out_queue=0, initiator=False)
    st = ep.initial()._replace(phase=2)
    (new, sends), = ep.receive(st, 0, ("open", ("L", 0)))
    assert new.slot == "closing"
    assert sends == [(0, ("close",))]


def test_model_openslot_retries_after_reject():
    from repro.verification.processes import EndpointProcess
    ep = EndpointProcess("L", "open", out_queue=0, initiator=True)
    st = ep.initial()._replace(phase=2)
    st, sends = ep._switch(ep.initial()._replace(phase=1, budget=0))
    assert sends == [(0, ("open", ("L", 0)))]
    (after, sends2), = ep.receive(st, 0, ("close",))
    kinds = [m[1][0] for m in sends2]
    assert kinds == ["closeack", "open"]
    assert after.slot == "opening"


def test_model_flowlink_forwards_fresh_select_only():
    from repro.verification.processes import FlowlinkProcess, FlowlinkState
    fl = FlowlinkProcess("F", in1=0, out1=1, out2=2)
    st = FlowlinkState("flowing", "flowing", ("L", 0), ("R", 0),
                       True, True, False, False, 0)
    # A select arriving on side 1 answering side 2's cached descriptor
    # is forwarded out side 2.
    (new, sends), = fl.receive(st, 0, ("select", ("R", 0)))
    assert sends == [(2, ("select", ("R", 0)))]
    # A stale one is discarded.
    (new, sends), = fl.receive(st, 0, ("select", ("R", 7)))
    assert sends == []


def test_model_flowlink_open_through_uses_cached_descriptor():
    from repro.verification.processes import FlowlinkProcess
    fl = FlowlinkProcess("F", in1=0, out1=1, out2=2)
    st = fl.initial()
    # An open arrives on side 1: side 2 must be opened through with the
    # freshly cached descriptor, making side 2 up to date (Case 2).
    (new, sends), = fl.receive(st, 0, ("open", ("L", 0)))
    assert ("open", ("L", 0)) in [m[1] for m in sends]
    assert new.s1 == "opened" and new.s2 == "opening"
    assert new.utd2 is True and new.c1 == ("L", 0)


def test_model_flowlink_close_propagates():
    from repro.verification.processes import FlowlinkProcess, FlowlinkState
    fl = FlowlinkProcess("F", in1=0, out1=1, out2=2)
    st = FlowlinkState("flowing", "flowing", ("L", 0), ("R", 0),
                       True, True, False, False, 0)
    (new, sends), = fl.receive(st, 0, ("close",))
    kinds = [(m[0], m[1][0]) for m in sends]
    assert (1, "closeack") in kinds     # ack toward side 1
    assert (2, "close") in kinds        # propagate toward side 2
    assert new.s1 == "closed" and new.s2 == "closing"
