"""Unit tests for openSlot / closeSlot / holdSlot goal objects."""

import pytest

from repro import AUDIO, Box, CloseSlot, HoldSlot, Network, OpenSlot
from repro.protocol.errors import ConfigurationError


@pytest.fixture
def rig():
    """A box with one channel to an auto-accepting device."""
    net = Network(seed=1)
    box = net.box("srv")
    dev = net.device("dev", auto_accept=True)
    ch = net.channel(box, dev)
    slot = ch.end_for(box).slot()
    return net, box, dev, slot


def test_openslot_opens_and_flows(rig):
    net, box, dev, slot = rig
    box.open_slot(slot, AUDIO)
    net.settle()
    assert slot.is_flowing
    # The device answered with a selector for the box's noMedia
    # descriptor: necessarily a noMedia selector.
    assert slot.selector_received is not None
    assert slot.selector_received.is_no_media


def test_openslot_precondition_not_enforced_when_reused(rig):
    net, box, dev, slot = rig
    goal = box.open_slot(slot, AUDIO)
    net.settle()
    assert slot.is_flowing
    # Re-annotating the same spec keeps the same object quietly.
    assert goal.attached


def test_openslot_retries_after_reject():
    net = Network(seed=1)
    box = net.box("srv")
    dev = net.device("dev")  # manual accept: declines the first time
    ch = net.channel(box, dev)
    slot = ch.end_for(box).slot()
    declined = []

    def offer(port):
        if not declined:
            declined.append(port)
            dev.decline(port=port)

    dev.on_offer = offer
    goal = box.open_slot(slot, AUDIO, retry_interval=0.1)
    net.run(0.05)
    assert slot.is_closed           # rejected once
    net.run(0.2)                     # retry fires
    assert dev.ringing()            # ringing again
    dev.answer()
    net.settle()
    assert slot.is_flowing
    assert goal.rejections == 1


def test_openslot_accepts_when_race_lost():
    net = Network(seed=1)
    box = net.box("srv")
    dev = net.device("dev")
    # Device initiates the channel, so the device side wins open races.
    ch = net.channel(dev, box)
    box_slot = ch.end_for(box).slot()
    dev_slot = ch.end_for(dev).slot()
    # Both open simultaneously.
    dev.open(dev_slot, AUDIO)
    box.open_slot(box_slot, AUDIO)
    net.settle()
    assert box_slot.is_flowing
    assert dev_slot.is_flowing


def test_closeslot_closes_flowing_channel(rig):
    net, box, dev, slot = rig
    box.open_slot(slot, AUDIO)
    net.settle()
    box.close_slot(slot)
    net.settle()
    assert slot.is_closed
    assert dev.ports()[0].slot.is_closed


def test_closeslot_rejects_incoming_opens():
    net = Network(seed=1)
    box = net.box("srv")
    dev = net.device("dev")
    ch = net.channel(dev, box)
    box_slot = ch.end_for(box).slot()
    goal = box.close_slot(box_slot)
    dev_slot = ch.end_for(dev).slot()
    dev.open(dev_slot, AUDIO)
    net.settle()
    assert box_slot.is_closed
    assert dev_slot.is_closed
    assert goal.rejected == 1


def test_closeslot_on_already_closed_is_quiet(rig):
    net, box, dev, slot = rig
    box.close_slot(slot)
    net.settle()
    assert slot.is_closed


def test_holdslot_accepts_when_other_end_opens():
    net = Network(seed=1)
    box = net.box("srv")
    dev = net.device("dev")
    ch = net.channel(dev, box)
    box_slot = ch.end_for(box).slot()
    goal = box.hold_slot(box_slot)
    dev_slot = ch.end_for(dev).slot()
    dev.open(dev_slot, AUDIO)
    net.settle()
    assert box_slot.is_flowing
    assert dev_slot.is_flowing
    assert goal.accepted == 1


def test_holdslot_never_initiates(rig):
    net, box, dev, slot = rig
    box.hold_slot(slot)
    net.settle()
    assert slot.is_closed
    assert slot.signals_sent == 0


def test_holdslot_holds_closed_after_far_close():
    net = Network(seed=1)
    box = net.box("srv")
    dev = net.device("dev")
    ch = net.channel(dev, box)
    box_slot = ch.end_for(box).slot()
    box.hold_slot(box_slot)
    dev_slot = ch.end_for(dev).slot()
    dev.open(dev_slot, AUDIO)
    net.settle()
    assert box_slot.is_flowing
    dev.close(dev_slot)
    net.settle()
    assert box_slot.is_closed
    # ...and reopens when the far end asks again.
    dev.open(dev_slot, AUDIO)
    net.settle()
    assert box_slot.is_flowing


def test_holdslot_takes_over_opening_slot():
    # holdSlot "can gain control when the slot is in any of its states
    # and must proceed from that point" (Sec. IV-A).
    net = Network(seed=1)
    box = net.box("srv")
    dev = net.device("dev", auto_accept=True)
    ch = net.channel(box, dev)
    slot = ch.end_for(box).slot()
    opener = box.open_slot(slot, AUDIO)   # sends open
    assert slot.is_opening
    box.hold_slot(slot)                   # replaces the openslot mid-open
    assert not opener.attached
    net.settle()
    assert slot.is_flowing                # holdslot finished the handshake
    assert slot.selector_sent is not None


def test_goal_replacement_detaches_old(rig):
    net, box, dev, slot = rig
    g1 = box.open_slot(slot, AUDIO)
    g2 = box.hold_slot(slot)
    assert not g1.attached
    assert g2.attached
    assert box.maps.goal_for(slot) is g2


def test_goal_object_single_use(rig):
    net, box, dev, slot = rig
    goal = OpenSlot(AUDIO)
    box.set_goal(goal, slot)
    with pytest.raises(ConfigurationError):
        box.set_goal(goal, slot)


def test_closeslot_then_holdslot_path_stays_closed(rig):
    net, box, dev, slot = rig
    box.open_slot(slot, AUDIO)
    net.settle()
    box.close_slot(slot)
    box.hold_slot(slot)   # replace mid-close: closeack still arrives
    net.settle()
    assert slot.is_closed
