"""LiveNode pairs over real localhost sockets.

Each test runs two nodes in one asyncio loop (two would-be processes),
negotiates channels over actual TCP, and pins connection-level behavior:
flowing media, teardown propagation, routing refusals, reconnect
exhaustion mapping onto noMedia abandonment, keepalives, and hostile
byte streams.
"""

import asyncio

import pytest

from repro.livenet.journal import host_for, reference_fingerprint
from repro.livenet.tcp import LiveNode, ReconnectPolicy
from repro.livenet.wire import (FrameAssembler, PingFrame, PongFrame,
                                decode_frame, encode_frame, frame)
from repro.protocol.errors import ConfigurationError

_FAST_RETRY = ReconnectPolicy(initial=0.005, factor=1.0, cap=0.01,
                              max_attempts=3)


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, 30))


async def _pair():
    a, b = LiveNode("a"), LiveNode("b")
    await a.start()
    await b.start()
    b.net.device("bob", auto_accept=True, host=host_for("bob"))
    a.add_peer("b", *b.listen_address)
    return a, b


async def _stop(*nodes):
    for node in nodes:
        await node.stop()


def test_call_flows_over_real_sockets():
    async def scenario():
        a, b = await _pair()
        try:
            alice = a.net.device("alice", host=host_for("alice"))
            record = a.open_live(alice, "b", "bob")
            port = alice.open(record.half.slot(), "audio")
            assert await a.wait_for(
                lambda: port.slot.state == "flowing")
            assert await b.wait_for(
                lambda: bool(b.channels)
                and next(iter(b.channels.values()))
                .half.slot().is_live)
            # The direction-wise journal matches a device--device sim
            # reference of the same scenario (first call, fresh nodes).
            summary = record.journal.summary()
            assert summary["sent"] >= 2 and summary["received"] >= 2
        finally:
            await _stop(a, b)
    run(scenario())


def test_teardown_propagates_and_unmaps_both_sides():
    async def scenario():
        a, b = await _pair()
        try:
            alice = a.net.device("alice", host=host_for("alice"))
            record = a.open_live(alice, "b", "bob")
            port = alice.open(record.half.slot(), "audio")
            assert await a.wait_for(
                lambda: port.slot.state == "flowing")
            record.half.end.tear_down()
            assert await a.wait_for(lambda: not a.channels)
            assert await b.wait_for(lambda: not b.channels)
            assert not record.half.alive
        finally:
            await _stop(a, b)
    run(scenario())


def test_unroutable_target_answers_bye_and_abandons():
    async def scenario():
        a, b = await _pair()
        try:
            alice = a.net.device("alice", host=host_for("alice"))
            record = a.open_live(alice, "b", "nobody-home")
            assert await a.wait_for(lambda: not record.half.alive)
            assert not a.channels and not b.channels
            assert any(e["action"] == "no-route" for e in b.events)
            assert any(e["action"] == "channel-bye" for e in a.events)
        finally:
            await _stop(a, b)
    run(scenario())


def test_unknown_peer_is_a_configuration_error():
    async def scenario():
        a = LiveNode("a")
        await a.start()
        try:
            alice = a.net.device("alice", host=host_for("alice"))
            with pytest.raises(ConfigurationError):
                a.open_live(alice, "nowhere", "bob")
        finally:
            await a.stop()
    run(scenario())


def test_reconnect_exhaustion_degrades_to_no_media():
    async def scenario():
        a = LiveNode("a", reconnect=_FAST_RETRY)
        await a.start()
        try:
            # A peer that will never answer: a port we know is closed.
            probe = await asyncio.start_server(
                lambda r, w: None, "127.0.0.1", 0)
            dead_port = probe.sockets[0].getsockname()[1]
            probe.close()
            await probe.wait_closed()
            a.add_peer("ghost", "127.0.0.1", dead_port)
            alice = a.net.device("alice", host=host_for("alice"))
            record = a.open_live(alice, "ghost", "bob")
            port = alice.open(record.half.slot(), "audio")
            assert await a.wait_for(lambda: not record.half.alive)
            assert "ghost" not in a.peers
            assert not a.channels
            # The owner saw the ordinary degradation, not an exception.
            assert port.slot.state != "flowing"
            assert any(e["action"] == "peer-dead" for e in a.events)
        finally:
            await a.stop()
    run(scenario())


def test_ping_is_answered_with_pong():
    async def scenario():
        a = LiveNode("a")
        await a.start()
        try:
            reader, writer = await asyncio.open_connection(
                *a.listen_address)
            writer.write(frame(encode_frame(PingFrame(77))))
            await writer.drain()
            assembler = FrameAssembler()
            payloads = []
            while not payloads:
                payloads = assembler.feed(await reader.read(4096))
            assert decode_frame(payloads[0]) == PongFrame(77)
            writer.close()
        finally:
            await a.stop()
    run(scenario())


def test_hostile_stream_drops_the_connection_only():
    async def scenario():
        a = LiveNode("a")
        await a.start()
        try:
            reader, writer = await asyncio.open_connection(
                *a.listen_address)
            writer.write(b"\xff" * 64)  # oversized length prefix
            await writer.drain()
            assert await a.wait_for(
                lambda: any(e["action"] == "bad-stream"
                            for e in a.events))
            assert await a.wait_for(lambda: not a.accepted)
            assert (await reader.read()) == b""  # server closed it
            writer.close()
            # The node is still serving afterwards.
            r2, w2 = await asyncio.open_connection(*a.listen_address)
            w2.write(frame(encode_frame(PingFrame(1))))
            await w2.drain()
            assert await r2.read(4) != b""
            w2.close()
        finally:
            await a.stop()
    run(scenario())


def test_first_live_call_matches_sim_reference_fingerprint():
    async def scenario():
        a, b = await _pair()
        try:
            # The canonical gateway chain, hand-built: caller--box on
            # node a, live leg box->bob on node b.
            caller = a.net.device("caller", host=host_for("caller"))
            box = a.net.box("gw")
            ch1 = a.net.channel(caller, box)
            record = a.open_live(box, "b", "bob")
            box.flow_link(ch1.responder_end.slot(), record.half.slot())
            port = caller.open(ch1.initiator_end.slot(), "audio")
            assert await a.wait_for(
                lambda: port.slot.state == "flowing")
            live = record.journal.fingerprint()
            assert live == reference_fingerprint("caller", "gw", "bob")
        finally:
            await _stop(a, b)
    run(scenario())
