"""Seeded round-trip property tests for the wire codec.

The codec's contract: one value, one byte sequence (determinism), and
strict bounded decoding (hostile input raises :class:`WireError`, never
anything else).  The tests here cover every signal type and descriptor
variant with encode -> decode -> encode byte equality, every proper
prefix of a valid encoding (must be rejected as truncated), seeded
garbage (must be rejected or decode canonically), and the stream-level
frame assembler under arbitrary chunking.
"""

import random

import pytest

from repro.network.address import Address
from repro.protocol.codecs import NO_MEDIA, registry
from repro.protocol.descriptor import (Codec, Descriptor, DescriptorId,
                                       Selector)
from repro.protocol.signals import (AppMeta, Available, Busy, ChannelUp,
                                    Close, CloseAck, Describe, MetaMessage,
                                    MetaSignal, Oack, Open, Select, TearDown,
                                    TunnelMessage, TunnelSignal, Unavailable)
from repro.livenet import wire
from repro.livenet.wire import (ByeFrame, FrameAssembler, HelloFrame,
                                PingFrame, PongFrame, ProbeFrame, SigFrame,
                                WIRE_VERSION, WireError, decode_envelope,
                                decode_frame, decode_signal, encode_envelope,
                                encode_frame, encode_sig_frame, encode_signal,
                                frame)

_CODECS = sorted(registry().values(), key=lambda c: c.name)
_REAL = [c for c in _CODECS if c is not NO_MEDIA]
_PRIVATE = Codec("X-LAB", "audio", -3, 12.5)


# ----------------------------------------------------------------------
# seeded generators
# ----------------------------------------------------------------------
def _descriptor(rng, origin="dev", version=None):
    """A random valid descriptor: real codecs + address, or pure noMedia."""
    version = rng.randrange(0, 1 << 20) if version is None else version
    if rng.random() < 0.2:
        return Descriptor(DescriptorId(origin, version), None, (NO_MEDIA,))
    count = rng.randint(1, 4)
    codecs = tuple(rng.sample(_REAL, count))
    if rng.random() < 0.3:
        codecs = codecs + (_PRIVATE,)
    address = Address("10.%d.%d.%d" % (rng.randrange(256),
                                       rng.randrange(256),
                                       rng.randrange(256)),
                      rng.randrange(1, 65536))
    return Descriptor(DescriptorId(origin, version), address, codecs)


def _selector(rng):
    descriptor = _descriptor(rng)
    codec = descriptor.codecs[0]
    return Selector(descriptor.id, descriptor.address, codec)


def _signal(rng):
    kind = rng.randrange(12)
    if kind == 0:
        return Open(rng.choice(["audio", "video", "text"]),
                    _descriptor(rng))
    if kind == 1:
        return Oack(_descriptor(rng))
    if kind == 2:
        return Close()
    if kind == 3:
        return CloseAck()
    if kind == 4:
        return Describe(_descriptor(rng))
    if kind == 5:
        return Select(_selector(rng))
    if kind == 6:
        return Busy(rng.choice(["admission", "policy", ""]),
                    rng.choice([0.0, 0.25, 30.0]))
    if kind == 7:
        return ChannelUp(rng.choice(["", "bob", "helpdesk"]))
    if kind == 8:
        return TearDown()
    if kind == 9:
        return Available()
    if kind == 10:
        return Unavailable(rng.choice(["busy", "gone", ""]))
    return AppMeta("app%d" % rng.randrange(4),
                   {"n": rng.randrange(100), "s": "x" * rng.randrange(8),
                    "f": rng.choice([0.5, -1.25]),
                    "b": rng.random() < 0.5})


def _envelope(rng):
    signal = _signal(rng)
    if isinstance(signal, TunnelSignal):
        return TunnelMessage(rng.choice(["t0", "t1", "media"]), signal)
    return MetaMessage(signal)


#: One instance of every signal class — the explicit coverage floor the
#: seeded sweep rides on top of.
_RNG0 = random.Random(0)
_EVERY_SIGNAL = [
    Open("audio", _descriptor(_RNG0)),
    Oack(_descriptor(_RNG0)),
    Close(),
    CloseAck(),
    Describe(Descriptor(DescriptorId("d", 0), None, (NO_MEDIA,))),
    Select(_selector(_RNG0)),
    Busy("admission", 1.5),
    ChannelUp("bob"),
    TearDown(),
    Available(),
    Unavailable("gone"),
    AppMeta("prepaid", {"funds": 7, "nested": "no"}),
]


# ----------------------------------------------------------------------
# round trips
# ----------------------------------------------------------------------
@pytest.mark.parametrize("signal", _EVERY_SIGNAL,
                         ids=lambda s: type(s).__name__)
def test_every_signal_type_roundtrips_byte_exactly(signal):
    encoded = encode_signal(signal)
    decoded = decode_signal(encoded)
    assert type(decoded) is type(signal)
    assert decoded == signal
    assert encode_signal(decoded) == encoded


def test_seeded_envelope_sweep_roundtrips_byte_exactly():
    rng = random.Random(20260808)
    for _ in range(300):
        message = _envelope(rng)
        encoded = encode_envelope(message)
        decoded = decode_envelope(encoded)
        assert decoded == message
        assert encode_envelope(decoded) == encoded


def test_descriptor_variants_roundtrip():
    rng = random.Random(7)
    seen_nomedia = seen_private = False
    for _ in range(100):
        descriptor = _descriptor(rng)
        seen_nomedia |= descriptor.codecs == (NO_MEDIA,)
        seen_private |= _PRIVATE in descriptor.codecs
        encoded = encode_signal(Describe(descriptor))
        assert decode_signal(encoded).descriptor == descriptor
    assert seen_nomedia and seen_private  # the sweep hit both variants


# ----------------------------------------------------------------------
# rejection: truncation, garbage, cross-type tags, versioning
# ----------------------------------------------------------------------
def test_every_proper_prefix_is_rejected():
    rng = random.Random(99)
    for _ in range(25):
        encoded = encode_envelope(_envelope(rng))
        for cut in range(len(encoded)):
            with pytest.raises(WireError):
                decode_envelope(encoded[:cut])


def test_trailing_bytes_are_rejected():
    encoded = encode_envelope(MetaMessage(TearDown()))
    with pytest.raises(WireError) as err:
        decode_envelope(encoded + b"\x00")
    assert err.value.reason == "trailing-bytes"


def test_seeded_garbage_never_escapes_wireerror():
    rng = random.Random(1234)
    rejected = 0
    for _ in range(500):
        blob = bytes(rng.randrange(256)
                     for _ in range(rng.randrange(1, 40)))
        try:
            message = decode_envelope(blob)
        except WireError:
            rejected += 1
        else:
            # The rare decodable blob must decode canonically.
            assert encode_envelope(message) == blob
    assert rejected > 400  # random bytes are overwhelmingly invalid


def test_meta_signal_in_tunnel_envelope_is_rejected():
    w = wire.Writer()
    w.u8(0x01)  # tunnel envelope tag
    w.string("t0")
    w.buf += encode_signal(TearDown())
    with pytest.raises(WireError) as err:
        decode_envelope(w.getvalue())
    assert err.value.reason == "bad-tag"


def test_tunnel_signal_in_meta_envelope_is_rejected():
    w = wire.Writer()
    w.u8(0x02)  # meta envelope tag
    w.buf += encode_signal(Close())
    with pytest.raises(WireError) as err:
        decode_envelope(w.getvalue())
    assert err.value.reason == "bad-tag"


def test_wire_version_mismatch_is_refused():
    payload = encode_frame(PingFrame(1))
    assert payload[0] == WIRE_VERSION
    with pytest.raises(WireError) as err:
        decode_frame(bytes([WIRE_VERSION + 1]) + payload[1:])
    assert err.value.reason == "version-mismatch"


def test_bad_wire_address_is_refused():
    w = wire.Writer()
    w.u8(WIRE_VERSION)
    w.u8(6)  # PROBE
    w.string("c1")
    w.string("not a host!")
    w.uvarint(9)
    with pytest.raises(WireError) as err:
        decode_frame(w.getvalue())
    assert err.value.reason == "bad-address"


# ----------------------------------------------------------------------
# transport frames
# ----------------------------------------------------------------------
@pytest.mark.parametrize("fr", [
    HelloFrame("a/c1", "gw", "bob", ("t0",)),
    HelloFrame("a/c2", "gw", "bob", ("t0", "aux")),
    SigFrame("a/c1", MetaMessage(ChannelUp("bob"))),
    SigFrame("a/c1", TunnelMessage("t0", Close())),
    ByeFrame("a/c1", "no-route"),
    ByeFrame("a/c1"),
    PingFrame(0), PongFrame(77),
    ProbeFrame("a/c1", "127.0.0.1", 40000),
], ids=lambda f: type(f).__name__)
def test_frames_roundtrip(fr):
    payload = encode_frame(fr)
    assert decode_frame(payload) == fr
    assert encode_frame(decode_frame(payload)) == payload


def test_sig_frame_splice_matches_full_encoding():
    envelope = TunnelMessage("t0", Busy("admission", 2.0))
    spliced = encode_sig_frame("n/c9", encode_envelope(envelope))
    assert spliced == encode_frame(SigFrame("n/c9", envelope))


# ----------------------------------------------------------------------
# stream framing
# ----------------------------------------------------------------------
def test_assembler_reassembles_under_arbitrary_chunking():
    rng = random.Random(5)
    payloads = [encode_frame(PingFrame(n)) for n in range(20)]
    stream = b"".join(frame(p) for p in payloads)
    for _ in range(20):
        assembler = FrameAssembler()
        out, pos = [], 0
        while pos < len(stream):
            cut = min(len(stream), pos + rng.randrange(1, 9))
            out.extend(assembler.feed(stream[pos:cut]))
            pos = cut
        assert out == payloads
        assert assembler.buffered == 0


def test_assembler_poisons_on_oversized_prefix():
    assembler = FrameAssembler()
    with pytest.raises(WireError) as err:
        assembler.feed(b"\xff\xff\xff\xff")
    assert err.value.reason == "oversized"
    with pytest.raises(WireError) as err:
        assembler.feed(b"")
    assert err.value.reason == "poisoned"


def test_frame_rejects_oversized_payload():
    with pytest.raises(WireError):
        frame(b"x" * (wire.MAX_FRAME + 1))
