"""The transport seam, bridged in-process.

Two independent simulated networks (as two OS processes would have),
joined by a pair of :class:`HalfChannel` objects whose sinks feed each
other's ``inject`` through in-memory queues.  This pins the seam's
contract without sockets: the unchanged protocol stack negotiates media
across the boundary, the direction-wise journal fingerprint matches the
single-process sim reference byte-for-byte, and teardown maps onto the
ordinary ``on_channel_gone``/noMedia degradation in both directions.
"""

import pytest

from repro.livenet.journal import (SignalJournal, host_for,
                                   reference_fingerprint)
from repro.livenet.seam import HalfChannel
from repro.livenet.wire import decode_envelope
from repro.network.network import Network


class _Bridge:
    """Two half-channels joined by in-memory frame queues."""

    def __init__(self, target="bob", caller_auto=False):
        self.net_a = Network(seed=0)
        self.net_b = Network(seed=0)
        self.caller = self.net_a.device("caller", auto_accept=caller_auto,
                                        host=host_for("caller"))
        self.box = self.net_a.box("gw")
        self.callee = self.net_b.device(target, auto_accept=True,
                                        host=host_for(target))
        self.a_to_b = []
        self.b_to_a = []
        self.half_a = HalfChannel(
            self.net_a.loop, self.box, self.a_to_b.append, "c1",
            remote_name=target, outbound=True, target=target)
        self.half_b = HalfChannel(
            self.net_b.loop, self.callee, self.b_to_a.append, "c1",
            remote_name="gw", outbound=False, target=target)

    def pump(self):
        """Ferry frames both ways until the worlds go quiet."""
        for _ in range(100):
            self.net_a.loop.run_until_quiescent()
            self.net_b.loop.run_until_quiescent()
            if not self.a_to_b and not self.b_to_a:
                return
            while self.a_to_b:
                self.half_b.inject(decode_envelope(self.a_to_b.pop(0)))
            while self.b_to_a:
                self.half_a.inject(decode_envelope(self.b_to_a.pop(0)))
        raise AssertionError("bridge did not settle")

    def place_call(self, medium="audio"):
        ch1 = self.net_a.channel(self.caller, self.box)
        self.box.flow_link(ch1.responder_end.slot(), self.half_a.slot())
        port = self.caller.open(ch1.initiator_end.slot(), medium)
        self.pump()
        return ch1, port


def test_media_flows_across_the_seam():
    bridge = _Bridge()
    _, port = bridge.place_call()
    assert port.slot.state == "flowing"
    callee_port = bridge.callee.ports()[0]
    assert callee_port.slot.state == "flowing"
    # Each side negotiated against the *other process's* descriptor.
    assert port.slot.selector_received is not None
    assert callee_port.slot.remote_descriptor is not None


def test_journal_parity_with_single_process_reference():
    bridge = _Bridge()
    journal = SignalJournal()
    journal.attach(bridge.half_a.channel, bridge.half_a._local_side)
    bridge.place_call()
    reference = reference_fingerprint("caller", "gw", "bob")
    assert journal.fingerprint() == reference
    assert journal.sent and journal.received


def test_local_teardown_crosses_the_wire():
    bridge = _Bridge()
    bridge.place_call()
    callee_port = bridge.callee.ports()[0]
    closed = []
    bridge.callee.on_port_closed = closed.append
    bridge.half_a.end.tear_down()
    bridge.pump()
    assert not bridge.half_a.alive and not bridge.half_b.alive
    assert closed == [callee_port]
    assert not bridge.callee.ports()
    # Both halves' links are fully retired: no end left alive.
    assert all(not end.alive for end in bridge.half_a.channel.ends)
    assert all(not end.alive for end in bridge.half_b.channel.ends)


def test_abandon_degrades_through_no_media_path():
    bridge = _Bridge()
    bridge.place_call()
    callee_port = bridge.callee.ports()[0]
    closed = []
    bridge.callee.on_port_closed = closed.append
    # The transport under half_b dies; nothing else crosses the wire.
    bridge.half_b.abandon("reconnect-exhausted")
    bridge.net_b.loop.run_until_quiescent()
    assert not bridge.half_b.alive
    assert closed == [callee_port]
    assert not bridge.callee.ports()
    # The far side is unaffected until told (or abandoned) itself.
    assert bridge.half_a.alive


def test_on_closed_fires_exactly_once():
    bridge = _Bridge()
    bridge.place_call()
    fired = []
    bridge.half_b.on_closed = fired.append
    bridge.half_b.abandon()
    bridge.half_b.abandon()  # idempotent
    bridge.net_b.loop.run_until_quiescent()
    assert fired == [bridge.half_b]


def test_dead_half_drops_traffic_silently():
    bridge = _Bridge()
    bridge.place_call()
    bridge.half_b.abandon()
    bridge.net_b.loop.run_until_quiescent()
    before = len(bridge.b_to_a)
    from repro.protocol.signals import MetaMessage, TearDown
    bridge.half_b.inject(MetaMessage(TearDown()))   # no-op
    bridge.net_b.loop.run_until_quiescent()
    assert len(bridge.b_to_a) == before


def test_channel_up_announcement_originates_from_initiator_only():
    bridge = _Bridge()
    # Before any media action the outbound half has already emitted
    # ChannelUp toward the responder; the responder half emitted nothing.
    bridge.net_a.loop.run_until_quiescent()
    assert len(bridge.a_to_b) == 1
    assert not bridge.b_to_a
    from repro.protocol.signals import ChannelUp, MetaMessage
    message = decode_envelope(bridge.a_to_b[0])
    assert type(message) is MetaMessage
    assert isinstance(message.signal, ChannelUp)
    assert message.signal.target == "bob"


def test_relay_never_processes_signals():
    bridge = _Bridge()
    with pytest.raises(AssertionError):
        bridge.half_a.relay.on_meta(None, None)
