"""Leak regression: repeated connect/call/disconnect cycles must leave
no lingering asyncio tasks, sockets, channel records, or sim-loop work.

The live stack allocates per-call (half-channels, journals, relay
agents) and per-connection (tasks, buffers) state; this test drives many
full cycles through the real gateway path and asserts every pool
returns to its baseline.
"""

import asyncio

from repro.livenet.cli import _http_json
from repro.livenet.gateway import Gateway
from repro.livenet.journal import host_for
from repro.livenet.tcp import LiveNode

_CYCLES = 6


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, 60))


def _live_tasks():
    return {t for t in asyncio.all_tasks() if not t.done()}


def test_repeated_calls_leak_nothing():
    async def scenario():
        a, b = LiveNode("a"), LiveNode("b")
        await a.start()
        await b.start()
        bob = b.net.device("bob", auto_accept=True, host=host_for("bob"))
        gateway = Gateway(a)
        await gateway.start()
        a.add_peer("b", *b.listen_address)
        try:
            # Warm-up call establishes the steady state (dial task,
            # accepted-connection task) the later cycles must return to.
            first = await gateway.place_call("bob@b", timeout=15)
            assert first["state"] == "flowing"
            assert first["parity"] is True  # first call: byte parity
            assert await b.wait_for(lambda: not b.channels)
            await asyncio.sleep(0.05)
            baseline_tasks = _live_tasks()

            for cycle in range(_CYCLES):
                result = await gateway.place_call("bob@b", timeout=15)
                assert result["state"] == "flowing", cycle
                # Channel records unmap on both sides...
                assert not a.channels, cycle
                assert await b.wait_for(lambda: not b.channels), cycle
                # ...the callee's media ports close with their slots...
                assert await b.wait_for(lambda: not bob.ports()), cycle
                assert not gateway.caller.ports(), cycle
                # ...and both sim loops go fully quiet (no orphaned
                # retransmit timers or queued deliveries).
                assert await a.wait_for(
                    lambda: a.loop._front(pop_cancelled=True) is None
                ), cycle
                assert await b.wait_for(
                    lambda: b.loop._front(pop_cancelled=True) is None
                ), cycle

            await asyncio.sleep(0.05)
            leaked = _live_tasks() - baseline_tasks
            assert not leaked, leaked
            # One persistent dialed connection; no accepted backlog on
            # the caller, exactly one on the callee.
            assert list(a.peers) == ["b"]
            assert a.peers["b"].connected
            assert not a.accepted
            assert len(b.accepted) == 1
            assert len(a._closed_ids) == _CYCLES + 1
            assert gateway.calls == _CYCLES + 1
        finally:
            await gateway.stop()
            await a.stop()
            await b.stop()
        # After stop: everything spawned by the stack is gone.
        await asyncio.sleep(0.05)
        for task in _live_tasks():
            assert not task.get_name().startswith("repro-"), task
        assert not a.channels and not b.channels
        assert not a.peers and not b.accepted
    run(scenario())


def test_repeated_raw_connects_leave_no_accepted_state():
    async def scenario():
        a = LiveNode("a")
        await a.start()
        try:
            for _ in range(10):
                _reader, writer = await asyncio.open_connection(
                    *a.listen_address)
                writer.close()
                await writer.wait_closed()
            assert await a.wait_for(lambda: not a.accepted)
            await asyncio.sleep(0.05)
            for task in _live_tasks():
                assert not task.get_name().startswith("repro-serve"), \
                    task
        finally:
            await a.stop()
    run(scenario())
