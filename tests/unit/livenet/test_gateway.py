"""The gateway front door: hygiene order, request validation, the call
path, and the WebSocket event stream — all over real localhost HTTP."""

import asyncio
import base64
import hashlib
import json

from repro.livenet.cli import _http_json
from repro.livenet.gateway import Gateway, _path_problem, _ws_text_frame
from repro.livenet.journal import host_for
from repro.livenet.tcp import LiveNode


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, 30))


async def _stack(**gateway_kwargs):
    a, b = LiveNode("a"), LiveNode("b")
    await a.start()
    await b.start()
    b.net.device("bob", auto_accept=True, host=host_for("bob"))
    gateway = Gateway(a, **gateway_kwargs)
    await gateway.start()
    a.add_peer("b", *b.listen_address)
    return a, b, gateway


async def _teardown(a, b, gateway):
    await gateway.stop()
    await a.stop()
    await b.stop()


def _request(gateway, method, path, body=None):
    host, port = gateway.listen_address
    return _http_json(host, port, method, path, body)


# ----------------------------------------------------------------------
# the call path
# ----------------------------------------------------------------------
def test_call_flows_with_sim_parity_and_hangs_up():
    async def scenario():
        a, b, gateway = await _stack()
        try:
            status, result = await _request(
                gateway, "POST", "/call", {"to": "bob@b"})
            assert status == 200
            assert result["state"] == "flowing"
            assert result["codec"] == "OPUS"
            assert result["parity"] is True
            assert result["journal"]["fingerprint"] == \
                result["reference"]
            assert result["journal"]["sent"] >= 2
            # Not held: both sides unmapped after the response.
            assert not a.channels
            assert await b.wait_for(lambda: not b.channels)
            assert gateway.calls == 1
        finally:
            await _teardown(a, b, gateway)
    run(scenario())


def test_call_validation_rejections():
    async def scenario():
        a, b, gateway = await _stack()
        try:
            for body, reason in [
                ({}, "bad-target"),
                ({"to": 7}, "bad-target"),
                ({"to": "bob"}, "bad-target"),
                ({"to": "bo b@b"}, "bad-target"),
                ({"to": "bob@elsewhere"}, "unknown-peer"),
                ({"to": "bob@b", "medium": "smell"}, "bad-medium"),
                ({"to": "bob@b", "timeout": -1}, "bad-timeout"),
                ({"to": "bob@b", "timeout": 999}, "bad-timeout"),
                ({"to": "bob@b", "udp": True}, "bad-udp-count"),
                ({"to": "bob@b", "udp": -2}, "bad-udp-count"),
            ]:
                status, result = await _request(
                    gateway, "POST", "/call", body)
                assert status == 400, body
                assert result["error"]["reason"] == reason
            assert gateway.calls == 0  # none reached the network
        finally:
            await _teardown(a, b, gateway)
    run(scenario())


def test_unroutable_callee_maps_to_bad_gateway():
    async def scenario():
        a, b, gateway = await _stack()
        try:
            status, result = await _request(
                gateway, "POST", "/call", {"to": "nobody@b"})
            assert status == 502
            assert result["error"]["reason"] == "live-leg-lost"
            assert not a.channels
        finally:
            await _teardown(a, b, gateway)
    run(scenario())


# ----------------------------------------------------------------------
# front-door hygiene
# ----------------------------------------------------------------------
def test_path_and_method_hygiene():
    async def scenario():
        a, b, gateway = await _stack()
        try:
            for path, status, reason in [
                ("/nope", 404, "not-found"),
                ("/call/../healthz", 400, "bad-path"),
                ("//healthz", 400, "bad-path"),
                ("/health%7Az", 400, "bad-path-chars"),
                ("/" + "x" * 200, 400, "path-too-long"),
            ]:
                got_status, result = await _request(
                    gateway, "GET", path)
                assert got_status == status, path
                assert result["error"]["reason"] == reason
            status, result = await _request(gateway, "GET", "/call")
            assert (status, result["error"]["reason"]) == \
                (405, "method-not-allowed")
            status, result = await _request(
                gateway, "POST", "/call", None)  # no body
            assert (status, result["error"]["reason"]) == \
                (400, "empty-body")
        finally:
            await _teardown(a, b, gateway)
    run(scenario())


def test_path_problem_unit():
    assert _path_problem("/healthz") is None
    assert _path_problem("healthz") == "bad-path"
    assert _path_problem("/a/../b") == "bad-path"
    assert _path_problem("/a//b") == "bad-path"
    assert _path_problem("/a%20b") == "bad-path-chars"
    assert _path_problem("/" + "p" * 100) == "path-too-long"


def test_rate_limit_answers_429_with_retry_after():
    async def scenario():
        a, b, gateway = await _stack(rate=0.001, burst=2)
        try:
            statuses = []
            for _ in range(4):
                status, _body = await _request(
                    gateway, "GET", "/healthz")
                statuses.append(status)
            assert statuses[:2] == [200, 200]
            assert statuses[2] == statuses[3] == 429
            assert gateway.rejected == 2
        finally:
            await _teardown(a, b, gateway)
    run(scenario())


# ----------------------------------------------------------------------
# observability endpoints
# ----------------------------------------------------------------------
def test_healthz_and_events_snapshots():
    async def scenario():
        a, b, gateway = await _stack()
        try:
            status, health = await _request(gateway, "GET", "/healthz")
            assert status == 200
            assert health["node"] == "a"
            assert health["gateway"] == {"calls": 0, "rejected": 0}
            assert "b" in health["peers"]
            status, events = await _request(gateway, "GET", "/events")
            assert status == 200
            assert any(e["action"] == "gateway-up" for e in events)
            status, channels = await _request(
                gateway, "GET", "/channels")
            assert (status, channels) == (200, {})
        finally:
            await _teardown(a, b, gateway)
    run(scenario())


def test_websocket_streams_events():
    async def scenario():
        a, b, gateway = await _stack()
        try:
            host, port = gateway.listen_address
            reader, writer = await asyncio.open_connection(host, port)
            key = base64.b64encode(b"0123456789abcdef").decode()
            writer.write((
                "GET /ws/events HTTP/1.1\r\nHost: x\r\n"
                "Upgrade: websocket\r\nConnection: Upgrade\r\n"
                "Sec-WebSocket-Key: %s\r\n\r\n" % key).encode())
            await writer.drain()
            head = await reader.readuntil(b"\r\n\r\n")
            assert b"101 Switching Protocols" in head
            expected = base64.b64encode(hashlib.sha1(
                (key + "258EAFA5-E914-47DA-95CA-C5AB0DC85B11")
                .encode()).digest())
            assert expected in head
            a._emit("test-event", detail="hello-ws")
            frame_head = await reader.readexactly(2)
            assert frame_head[0] == 0x81  # FIN + text
            payload = await reader.readexactly(frame_head[1] & 0x7F)
            event = json.loads(payload)
            assert event["action"] == "test-event"
            writer.write(b"\x88\x80\x00\x00\x00\x00")  # masked close
            await writer.drain()
            writer.close()
            assert await a.wait_for(lambda: not a.subscribers)
        finally:
            await _teardown(a, b, gateway)
    run(scenario())


def test_non_websocket_upgrade_is_rejected():
    async def scenario():
        a, b, gateway = await _stack()
        try:
            status, result = await _request(
                gateway, "GET", "/ws/events")
            assert status == 400
            assert result["error"]["reason"] == "not-a-websocket"
        finally:
            await _teardown(a, b, gateway)
    run(scenario())


def test_ws_text_frame_length_encodings():
    assert _ws_text_frame(b"x")[:2] == b"\x81\x01"
    medium = _ws_text_frame(b"y" * 300)
    assert medium[:4] == b"\x81\x7e\x01\x2c"
    large = _ws_text_frame(b"z" * 70000)
    assert large[:2] == b"\x81\x7f"
    assert int.from_bytes(large[2:10], "big") == 70000
