"""Unit tests for the slot protocol FSM (Fig. 9)."""

import pytest

from repro.network.address import Address
from repro.network.eventloop import EventLoop
from repro.protocol.channel import SignalingAgent, SignalingChannel
from repro.protocol.codecs import AUDIO, G711, NO_MEDIA
from repro.protocol.descriptor import DescriptorFactory, Selector
from repro.protocol.errors import ProtocolError, ProtocolStateError
from repro.protocol.signals import Close, Describe, Oack, Open, Select


class Recorder(SignalingAgent):
    """Agent recording every passed-up signal, taking no action."""

    def __init__(self, loop, name):
        super().__init__(loop, name)
        self.seen = []
        self.metas = []

    def on_tunnel_signal(self, slot, signal):
        self.seen.append((slot, signal))

    def on_meta(self, end, signal):
        self.metas.append((end, signal))


@pytest.fixture
def pair():
    loop = EventLoop()
    a = Recorder(loop, "a")
    b = Recorder(loop, "b")
    channel = SignalingChannel(loop, a, b, name="t")
    return loop, a, b, channel


def descs(origin="x"):
    return DescriptorFactory(origin)


def real_desc(factory, port=10000):
    return factory.descriptor(Address("10.0.0.1", port), (G711,))


def test_open_handshake_reaches_flowing(pair):
    loop, a, b, ch = pair
    sa, sb = ch.ends[0].slot(), ch.ends[1].slot()
    fa, fb = descs("a"), descs("b")
    sa.send_open(AUDIO, real_desc(fa))
    assert sa.state == "opening"
    loop.run()
    assert sb.state == "opened"
    assert sb.medium == AUDIO
    assert sb.is_described
    sb.send_oack(real_desc(fb))
    assert sb.state == "flowing"
    loop.run()
    assert sa.state == "flowing"
    assert sa.remote_descriptor.id.origin == "b"


def test_reject_via_close(pair):
    loop, a, b, ch = pair
    sa, sb = ch.ends[0].slot(), ch.ends[1].slot()
    sa.send_open(AUDIO, real_desc(descs("a")))
    loop.run()
    sb.send_close()
    loop.run()
    # close acts as reject; both sides end closed and acked.
    assert sa.state == "closed"
    assert sb.state == "closed"


def test_close_from_flowing_with_ack(pair):
    loop, a, b, ch = pair
    sa, sb = ch.ends[0].slot(), ch.ends[1].slot()
    fa, fb = descs("a"), descs("b")
    sa.send_open(AUDIO, real_desc(fa))
    loop.run()
    sb.send_oack(real_desc(fb))
    loop.run()
    sa.send_close()
    assert sa.state == "closing"
    loop.run()
    assert sb.state == "closed"
    assert sa.state == "closed"
    assert sa.medium is None and sa.remote_descriptor is None


def test_crossing_closes_both_settle(pair):
    loop, a, b, ch = pair
    sa, sb = ch.ends[0].slot(), ch.ends[1].slot()
    fa, fb = descs("a"), descs("b")
    sa.send_open(AUDIO, real_desc(fa))
    loop.run()
    sb.send_oack(real_desc(fb))
    loop.run()
    sa.send_close()
    sb.send_close()
    loop.run()
    assert sa.state == "closed"
    assert sb.state == "closed"


def test_open_open_race_initiator_wins(pair):
    loop, a, b, ch = pair
    sa, sb = ch.ends[0].slot(), ch.ends[1].slot()
    fa, fb = descs("a"), descs("b")
    sa.send_open(AUDIO, real_desc(fa))
    sb.send_open(AUDIO, real_desc(fb))
    loop.run()
    # sa belongs to the channel initiator: it wins and ignores b's open;
    # sb backs off to ``opened`` and will be the acceptor.
    assert sa.state == "opening"
    assert sa.race_drops == 1
    assert sb.state == "opened"
    sb.send_oack(real_desc(fb))
    loop.run()
    assert sa.state == "flowing" and sb.state == "flowing"


def test_describe_and_select_while_flowing(pair):
    loop, a, b, ch = pair
    sa, sb = ch.ends[0].slot(), ch.ends[1].slot()
    fa, fb = descs("a"), descs("b")
    sa.send_open(AUDIO, real_desc(fa))
    loop.run()
    sb.send_oack(real_desc(fb))
    loop.run()
    new_desc = real_desc(fa, port=10002)
    sa.send_describe(new_desc)
    loop.run()
    assert sb.remote_descriptor is new_desc
    sel = Selector(answers=new_desc.id, address=None, codec=G711)
    sb.send_select(sel)
    loop.run()
    assert sa.selector_received is sel


def test_select_must_answer_current_descriptor(pair):
    loop, a, b, ch = pair
    sa, sb = ch.ends[0].slot(), ch.ends[1].slot()
    fa, fb = descs("a"), descs("b")
    d0 = real_desc(fa)
    sa.send_open(AUDIO, d0)
    loop.run()
    sb.send_oack(real_desc(fb))
    loop.run()
    stale = Selector(answers=real_desc(fa).id, address=None, codec=G711)
    with pytest.raises(ProtocolError):
        sb.send_select(stale)


def test_stale_signals_drained_while_closing(pair):
    loop, a, b, ch = pair
    sa, sb = ch.ends[0].slot(), ch.ends[1].slot()
    fa, fb = descs("a"), descs("b")
    sa.send_open(AUDIO, real_desc(fa))
    loop.run()
    # b accepts at the same moment a gives up: oack and close cross.
    sb.send_oack(real_desc(fb))
    sa.send_close()
    loop.run()
    assert sa.state == "closed"
    assert sb.state == "closed"
    assert sa.stale_drops == 1  # the crossing oack was drained


def test_send_validation_errors():
    loop = EventLoop()
    a, b = Recorder(loop, "a"), Recorder(loop, "b")
    ch = SignalingChannel(loop, a, b)
    sa = ch.ends[0].slot()
    f = descs()
    with pytest.raises(ProtocolStateError):
        sa.send_oack(real_desc(f))          # not opened
    with pytest.raises(ProtocolStateError):
        sa.send_close()                      # not live
    with pytest.raises(ProtocolStateError):
        sa.send_describe(real_desc(f))       # not flowing
    sa.send_open(AUDIO, real_desc(f))
    with pytest.raises(ProtocolStateError):
        sa.send_open(AUDIO, real_desc(f))    # already opening


def test_illegal_receive_raises_in_strict_mode(pair):
    loop, a, b, ch = pair
    sb = ch.ends[1].slot()
    # Deliver a select to a closed slot: protocol violation.
    sel = Selector(answers=real_desc(descs()).id, address=None,
                   codec=NO_MEDIA)
    with pytest.raises(ProtocolError):
        sb.receive(Select(sel))


def test_illegal_receive_counted_but_passed_up_in_lenient_mode():
    loop = EventLoop()
    a, b = Recorder(loop, "a"), Recorder(loop, "b")
    ch = SignalingChannel(loop, a, b, strict=False)
    sb = ch.ends[1].slot()
    sel = Selector(answers=real_desc(descs()).id, address=None,
                   codec=NO_MEDIA)
    # Passed up (so a naive server can forward it) but counted, and the
    # slot state is untouched.
    assert sb.receive(Select(sel)) is True
    assert sb.invalid_drops == 1
    assert sb.state == "closed"


def test_reopen_after_close_is_clean(pair):
    loop, a, b, ch = pair
    sa, sb = ch.ends[0].slot(), ch.ends[1].slot()
    fa, fb = descs("a"), descs("b")
    sa.send_open(AUDIO, real_desc(fa))
    loop.run()
    sb.send_oack(real_desc(fb))
    loop.run()
    sa.send_close()
    loop.run()
    # The lane is drained; a second episode works from scratch.
    sa.send_open(AUDIO, real_desc(fa, port=10008))
    loop.run()
    assert sb.state == "opened"
    sb.send_oack(real_desc(fb, port=10010))
    loop.run()
    assert sa.state == "flowing" and sb.state == "flowing"


def test_signals_passed_up_to_owner(pair):
    loop, a, b, ch = pair
    sa, sb = ch.ends[0].slot(), ch.ends[1].slot()
    sa.send_open(AUDIO, real_desc(descs("a")))
    loop.run()
    kinds = [s.kind for _, s in b.seen]
    assert kinds == ["open"]


def test_race_losing_open_not_passed_up(pair):
    loop, a, b, ch = pair
    sa, sb = ch.ends[0].slot(), ch.ends[1].slot()
    sa.send_open(AUDIO, real_desc(descs("a")))
    sb.send_open(AUDIO, real_desc(descs("b")))
    loop.run()
    kinds_a = [s.kind for _, s in a.seen]
    assert "open" not in kinds_a  # dropped at the winner
    kinds_b = [s.kind for _, s in b.seen]
    assert kinds_b == ["open"]



# ----------------------------------------------------------------------
# robust mode: retransmission, duplicate absorption, graceful failure
# ----------------------------------------------------------------------
from repro.protocol.slot import RetransmitPolicy  # noqa: E402

#: Handshake tests drive both ends by hand, so the staleness timer is
#: disabled here; the describe/select recovery tests build their own
#: channel with it on.
HANDSHAKE_POLICY = RetransmitPolicy(initial=0.25, backoff=2.0,
                                    max_retries=4, stale_after=0.0)


@pytest.fixture
def robust_pair():
    loop = EventLoop()
    a = Recorder(loop, "a")
    b = Recorder(loop, "b")
    channel = SignalingChannel(loop, a, b, name="r",
                               retransmit=HANDSHAKE_POLICY)
    return loop, a, b, channel


def lose(channel):
    """Context manager dropping every transmit while the block runs.

    Taking the link down is the cleanest deterministic loss: transmit
    returns early, so exactly the sends inside the block disappear.
    """
    import contextlib

    @contextlib.contextmanager
    def down():
        channel.link.down = True
        try:
            yield
        finally:
            channel.link.down = False
    return down()


def robust_flowing(loop, ch):
    """Drive the handshake to flowing/flowing with bounded advances, so
    no retransmission timer fires along the way."""
    sa, sb = ch.ends[0].slot(), ch.ends[1].slot()
    sa.send_open(AUDIO, real_desc(descs("a")))
    loop.advance(0.1)
    sb.send_oack(real_desc(descs("b")))
    loop.advance(0.1)
    assert sa.state == "flowing" and sb.state == "flowing"
    return sa, sb


def test_lost_open_is_retransmitted(robust_pair):
    loop, a, b, ch = robust_pair
    sa, sb = ch.ends[0].slot(), ch.ends[1].slot()
    with lose(ch):
        sa.send_open(AUDIO, real_desc(descs("a")))
    loop.advance(0.3)  # the 0.25 s timer re-sends the open
    assert sa.retransmits == 1
    assert sb.state == "opened"
    sb.send_oack(real_desc(descs("b")))
    loop.run()
    assert sa.state == "flowing" and sb.state == "flowing"
    assert loop.pending() == 0  # the oack cancelled the timer


def test_lost_close_is_retransmitted(robust_pair):
    loop, a, b, ch = robust_pair
    sa, sb = robust_flowing(loop, ch)
    with lose(ch):
        sa.send_close()
    loop.run()
    assert sa.retransmits == 1
    assert sa.state == "closed" and sb.state == "closed"
    assert loop.pending() == 0


def test_no_loss_means_no_retransmission(robust_pair):
    """The acknowledgement cancels the timer before it fires."""
    loop, a, b, ch = robust_pair
    sa, sb = robust_flowing(loop, ch)
    sa.send_close()
    loop.advance(0.1)
    assert sa.state == "closed" and sb.state == "closed"
    assert sa.retransmits == 0 and sb.retransmits == 0
    assert sa.duplicate_drops == 0 and sb.duplicate_drops == 0
    assert loop.pending() == 0


def test_duplicate_open_reelicits_oack(robust_pair):
    """A retransmitted open at a flowing slot recovers a lost oack."""
    loop, a, b, ch = robust_pair
    sa, sb = robust_flowing(loop, ch)
    assert sb.receive(Open(AUDIO, sb.remote_descriptor)) is False
    assert sb.duplicate_drops == 1
    loop.advance(0.1)
    # the re-elicited oack is itself absorbed as a duplicate at a
    assert sa.duplicate_drops == 1
    assert sa.state == "flowing" and sb.state == "flowing"


def test_duplicate_close_reacked_at_closed_slot(robust_pair):
    """A retransmitted close whose closeack was lost is answered again
    from ``closed`` instead of raising."""
    loop, a, b, ch = robust_pair
    sa, sb = robust_flowing(loop, ch)
    sa.send_close()
    loop.advance(0.1)
    assert sb.receive(Close()) is False
    assert sb.duplicate_drops == 1
    loop.advance(0.1)
    # the duplicate closeack is absorbed at the (already closed) sender
    assert sa.duplicate_drops == 1
    assert sa.state == "closed" and sb.state == "closed"


def test_open_give_up_degrades_and_reports():
    loop = EventLoop()
    a, b = Recorder(loop, "a"), Recorder(loop, "b")
    policy = RetransmitPolicy(initial=0.1, backoff=2.0, max_retries=2,
                              stale_after=0.0)
    ch = SignalingChannel(loop, a, b, retransmit=policy)
    failures = []
    a.on_slot_failed = lambda slot, reason: failures.append((slot, reason))
    sa = ch.ends[0].slot()
    ch.link.down = True  # the peer is unreachable for good
    sa.send_open(AUDIO, real_desc(descs("a")))
    loop.run()
    assert sa.state == "closed"
    assert sa.failed and sa.failures == 1
    assert sa.retransmits == policy.max_retries
    assert failures == [(sa, "open")]
    assert loop.pending() == 0  # no timer left ticking


def test_close_give_up_degrades_and_reports(robust_pair):
    loop, a, b, ch = robust_pair
    sa, sb = robust_flowing(loop, ch)
    failures = []
    a.on_slot_failed = lambda slot, reason: failures.append(reason)
    ch.link.down = True
    sa.send_close()
    loop.run()
    assert sa.state == "closed" and sa.failed
    assert failures == ["close"]
    assert loop.pending() == 0


def test_failed_flag_cleared_by_next_open():
    loop = EventLoop()
    a, b = Recorder(loop, "a"), Recorder(loop, "b")
    policy = RetransmitPolicy(initial=0.1, max_retries=1, stale_after=0.0)
    ch = SignalingChannel(loop, a, b, retransmit=policy)
    sa, sb = ch.ends[0].slot(), ch.ends[1].slot()
    ch.link.down = True
    sa.send_open(AUDIO, real_desc(descs("a")))
    loop.run()
    assert sa.failed
    ch.link.down = False  # connectivity returns; a second episode works
    sa.send_open(AUDIO, real_desc(descs("a"), port=10012))
    assert not sa.failed
    loop.advance(0.05)
    assert sb.state == "opened"
    sb.send_oack(real_desc(descs("b")))
    loop.run()
    assert sa.state == "flowing" and not sa.failed


def stale_pair():
    loop = EventLoop()
    a = Recorder(loop, "a")
    b = Recorder(loop, "b")
    policy = RetransmitPolicy(initial=0.25, backoff=2.0, max_retries=4,
                              stale_after=0.5)
    ch = SignalingChannel(loop, a, b, name="s", retransmit=policy)
    return loop, a, b, ch


def test_lost_describe_recovered_by_staleness_timer():
    loop, a, b, ch = stale_pair()
    sa, sb = robust_flowing(loop, ch)
    b.seen.clear()
    fresh = real_desc(descs("a"), port=10020)
    with lose(ch):
        sa.send_describe(fresh)
    loop.run()  # the staleness timer re-describes until answered/spent
    kinds = [s.kind for _, s in b.seen]
    assert "describe" in kinds
    assert sb.remote_descriptor is fresh
    assert sa.retransmits >= 1
    assert not sa.failed  # a mute selector is not a dead handshake


def test_answered_descriptor_stops_staleness_timer():
    loop, a, b, ch = stale_pair()
    sa, sb = robust_flowing(loop, ch)
    fresh = real_desc(descs("a"), port=10022)
    sa.send_describe(fresh)
    loop.advance(0.1)
    sb.send_select(Selector(answers=fresh.id, address=None, codec=G711))
    loop.advance(0.1)
    assert sa.selector_received is not None
    before = sa.retransmits
    loop.run()
    assert sa.retransmits == before  # no re-describe after the answer


def test_residual_signal_dropped_silently_in_robust_mode(robust_pair):
    loop, a, b, ch = robust_pair
    sa, sb = ch.ends[0].slot(), ch.ends[1].slot()
    sa.send_open(AUDIO, real_desc(descs("a")))
    loop.advance(0.1)
    assert sb.state == "opened"
    # A selector at an ``opened`` slot is out of place; strict mode
    # would raise, robust mode counts it as weather.
    sel = Selector(answers=real_desc(descs("a")).id, address=None,
                   codec=NO_MEDIA)
    assert sb.receive(Select(sel)) is False
    assert sb.invalid_drops == 1
    assert sb.state == "opened"


def test_slot_failed_guard_predicate():
    from repro.core.predicates import guard_atom, slot_failed

    class Stub:
        pass

    guard = slot_failed("s")
    assert guard_atom(guard) == ("slot", "failed", "s")
    program = Stub()
    program.box = Stub()
    program.box.slot_names = {}
    assert guard(program) is False        # unbound name
    slot = Stub()
    slot.failed = False
    program.box.slot_names["s"] = slot
    assert guard(program) is False        # bound, healthy
    slot.failed = True
    assert guard(program) is True
