"""Unit tests for the slot protocol FSM (Fig. 9)."""

import pytest

from repro.network.address import Address
from repro.network.eventloop import EventLoop
from repro.protocol.channel import SignalingAgent, SignalingChannel
from repro.protocol.codecs import AUDIO, G711, NO_MEDIA
from repro.protocol.descriptor import DescriptorFactory, Selector
from repro.protocol.errors import ProtocolError, ProtocolStateError
from repro.protocol.signals import Close, Describe, Oack, Open, Select


class Recorder(SignalingAgent):
    """Agent recording every passed-up signal, taking no action."""

    def __init__(self, loop, name):
        super().__init__(loop, name)
        self.seen = []
        self.metas = []

    def on_tunnel_signal(self, slot, signal):
        self.seen.append((slot, signal))

    def on_meta(self, end, signal):
        self.metas.append((end, signal))


@pytest.fixture
def pair():
    loop = EventLoop()
    a = Recorder(loop, "a")
    b = Recorder(loop, "b")
    channel = SignalingChannel(loop, a, b, name="t")
    return loop, a, b, channel


def descs(origin="x"):
    return DescriptorFactory(origin)


def real_desc(factory, port=10000):
    return factory.descriptor(Address("10.0.0.1", port), (G711,))


def test_open_handshake_reaches_flowing(pair):
    loop, a, b, ch = pair
    sa, sb = ch.ends[0].slot(), ch.ends[1].slot()
    fa, fb = descs("a"), descs("b")
    sa.send_open(AUDIO, real_desc(fa))
    assert sa.state == "opening"
    loop.run()
    assert sb.state == "opened"
    assert sb.medium == AUDIO
    assert sb.is_described
    sb.send_oack(real_desc(fb))
    assert sb.state == "flowing"
    loop.run()
    assert sa.state == "flowing"
    assert sa.remote_descriptor.id.origin == "b"


def test_reject_via_close(pair):
    loop, a, b, ch = pair
    sa, sb = ch.ends[0].slot(), ch.ends[1].slot()
    sa.send_open(AUDIO, real_desc(descs("a")))
    loop.run()
    sb.send_close()
    loop.run()
    # close acts as reject; both sides end closed and acked.
    assert sa.state == "closed"
    assert sb.state == "closed"


def test_close_from_flowing_with_ack(pair):
    loop, a, b, ch = pair
    sa, sb = ch.ends[0].slot(), ch.ends[1].slot()
    fa, fb = descs("a"), descs("b")
    sa.send_open(AUDIO, real_desc(fa))
    loop.run()
    sb.send_oack(real_desc(fb))
    loop.run()
    sa.send_close()
    assert sa.state == "closing"
    loop.run()
    assert sb.state == "closed"
    assert sa.state == "closed"
    assert sa.medium is None and sa.remote_descriptor is None


def test_crossing_closes_both_settle(pair):
    loop, a, b, ch = pair
    sa, sb = ch.ends[0].slot(), ch.ends[1].slot()
    fa, fb = descs("a"), descs("b")
    sa.send_open(AUDIO, real_desc(fa))
    loop.run()
    sb.send_oack(real_desc(fb))
    loop.run()
    sa.send_close()
    sb.send_close()
    loop.run()
    assert sa.state == "closed"
    assert sb.state == "closed"


def test_open_open_race_initiator_wins(pair):
    loop, a, b, ch = pair
    sa, sb = ch.ends[0].slot(), ch.ends[1].slot()
    fa, fb = descs("a"), descs("b")
    sa.send_open(AUDIO, real_desc(fa))
    sb.send_open(AUDIO, real_desc(fb))
    loop.run()
    # sa belongs to the channel initiator: it wins and ignores b's open;
    # sb backs off to ``opened`` and will be the acceptor.
    assert sa.state == "opening"
    assert sa.race_drops == 1
    assert sb.state == "opened"
    sb.send_oack(real_desc(fb))
    loop.run()
    assert sa.state == "flowing" and sb.state == "flowing"


def test_describe_and_select_while_flowing(pair):
    loop, a, b, ch = pair
    sa, sb = ch.ends[0].slot(), ch.ends[1].slot()
    fa, fb = descs("a"), descs("b")
    sa.send_open(AUDIO, real_desc(fa))
    loop.run()
    sb.send_oack(real_desc(fb))
    loop.run()
    new_desc = real_desc(fa, port=10002)
    sa.send_describe(new_desc)
    loop.run()
    assert sb.remote_descriptor is new_desc
    sel = Selector(answers=new_desc.id, address=None, codec=G711)
    sb.send_select(sel)
    loop.run()
    assert sa.selector_received is sel


def test_select_must_answer_current_descriptor(pair):
    loop, a, b, ch = pair
    sa, sb = ch.ends[0].slot(), ch.ends[1].slot()
    fa, fb = descs("a"), descs("b")
    d0 = real_desc(fa)
    sa.send_open(AUDIO, d0)
    loop.run()
    sb.send_oack(real_desc(fb))
    loop.run()
    stale = Selector(answers=real_desc(fa).id, address=None, codec=G711)
    with pytest.raises(ProtocolError):
        sb.send_select(stale)


def test_stale_signals_drained_while_closing(pair):
    loop, a, b, ch = pair
    sa, sb = ch.ends[0].slot(), ch.ends[1].slot()
    fa, fb = descs("a"), descs("b")
    sa.send_open(AUDIO, real_desc(fa))
    loop.run()
    # b accepts at the same moment a gives up: oack and close cross.
    sb.send_oack(real_desc(fb))
    sa.send_close()
    loop.run()
    assert sa.state == "closed"
    assert sb.state == "closed"
    assert sa.stale_drops == 1  # the crossing oack was drained


def test_send_validation_errors():
    loop = EventLoop()
    a, b = Recorder(loop, "a"), Recorder(loop, "b")
    ch = SignalingChannel(loop, a, b)
    sa = ch.ends[0].slot()
    f = descs()
    with pytest.raises(ProtocolStateError):
        sa.send_oack(real_desc(f))          # not opened
    with pytest.raises(ProtocolStateError):
        sa.send_close()                      # not live
    with pytest.raises(ProtocolStateError):
        sa.send_describe(real_desc(f))       # not flowing
    sa.send_open(AUDIO, real_desc(f))
    with pytest.raises(ProtocolStateError):
        sa.send_open(AUDIO, real_desc(f))    # already opening


def test_illegal_receive_raises_in_strict_mode(pair):
    loop, a, b, ch = pair
    sb = ch.ends[1].slot()
    # Deliver a select to a closed slot: protocol violation.
    sel = Selector(answers=real_desc(descs()).id, address=None,
                   codec=NO_MEDIA)
    with pytest.raises(ProtocolError):
        sb.receive(Select(sel))


def test_illegal_receive_counted_but_passed_up_in_lenient_mode():
    loop = EventLoop()
    a, b = Recorder(loop, "a"), Recorder(loop, "b")
    ch = SignalingChannel(loop, a, b, strict=False)
    sb = ch.ends[1].slot()
    sel = Selector(answers=real_desc(descs()).id, address=None,
                   codec=NO_MEDIA)
    # Passed up (so a naive server can forward it) but counted, and the
    # slot state is untouched.
    assert sb.receive(Select(sel)) is True
    assert sb.invalid_drops == 1
    assert sb.state == "closed"


def test_reopen_after_close_is_clean(pair):
    loop, a, b, ch = pair
    sa, sb = ch.ends[0].slot(), ch.ends[1].slot()
    fa, fb = descs("a"), descs("b")
    sa.send_open(AUDIO, real_desc(fa))
    loop.run()
    sb.send_oack(real_desc(fb))
    loop.run()
    sa.send_close()
    loop.run()
    # The lane is drained; a second episode works from scratch.
    sa.send_open(AUDIO, real_desc(fa, port=10008))
    loop.run()
    assert sb.state == "opened"
    sb.send_oack(real_desc(fb, port=10010))
    loop.run()
    assert sa.state == "flowing" and sb.state == "flowing"


def test_signals_passed_up_to_owner(pair):
    loop, a, b, ch = pair
    sa, sb = ch.ends[0].slot(), ch.ends[1].slot()
    sa.send_open(AUDIO, real_desc(descs("a")))
    loop.run()
    kinds = [s.kind for _, s in b.seen]
    assert kinds == ["open"]


def test_race_losing_open_not_passed_up(pair):
    loop, a, b, ch = pair
    sa, sb = ch.ends[0].slot(), ch.ends[1].slot()
    sa.send_open(AUDIO, real_desc(descs("a")))
    sb.send_open(AUDIO, real_desc(descs("b")))
    loop.run()
    kinds_a = [s.kind for _, s in a.seen]
    assert "open" not in kinds_a  # dropped at the winner
    kinds_b = [s.kind for _, s in b.seen]
    assert kinds_b == ["open"]
