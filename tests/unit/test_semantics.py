"""Unit tests for path extraction, the Sec. V spec predicates, the
finite-trace LTL operators, and the runtime monitor."""

import pytest

from repro import AUDIO, Network
from repro.semantics import (PathMonitor, SpecViolation, all_paths,
                             always, always_eventually, both_closed,
                             both_flowing, check_path_now, endpoint_role,
                             eventually, eventually_always,
                             expected_property, trace_path)


@pytest.fixture
def relay():
    """A -- box -- B, flowlinked, call established."""
    net = Network(seed=51)
    a = net.device("A")
    b = net.device("B", auto_accept=True)
    box = net.box("srv")
    ch_a = net.channel(a, box)
    ch_b = net.channel(box, b)
    sa = ch_a.end_for(box).slot()
    sb = ch_b.end_for(box).slot()
    box.flow_link(sa, sb)
    a.open(ch_a.end_for(a).slot(), AUDIO)
    net.settle()
    return net, a, b, box, sa, sb


# ----------------------------------------------------------------------
# path extraction
# ----------------------------------------------------------------------
def test_trace_path_spans_flowlink(relay):
    net, a, b, box, sa, sb = relay
    path = trace_path(sa)
    assert path.hops == 2
    assert len(path.flowlinks) == 1
    assert path.left_owner is a or path.right_owner is a
    assert {path.left_owner, path.right_owner} == {a, b}


def test_trace_path_from_any_slot_same_endpoints(relay):
    net, a, b, box, sa, sb = relay
    ends = {trace_path(s).left.name for s in (sa, sb)} | \
           {trace_path(s).right.name for s in (sa, sb)}
    # both traces see the same two endpoint slots
    assert len(ends) == 2


def test_all_paths_deduplicates(relay):
    net, a, b, box, sa, sb = relay
    paths = all_paths(net.channels)
    assert len(paths) == 1


def test_endpoint_roles():
    net = Network(seed=52)
    dev = net.device("dev")
    box = net.box("srv")
    ch = net.channel(dev, box)
    slot = ch.end_for(box).slot()
    assert endpoint_role(ch.end_for(dev).slot()) == "user"
    assert endpoint_role(slot) == "none"
    box.hold_slot(slot)
    assert endpoint_role(slot) == "hold"
    box.close_slot(slot)
    assert endpoint_role(slot) == "close"
    box.open_slot(slot, AUDIO)
    assert endpoint_role(slot) == "open"


def test_path_type_normalized():
    net = Network(seed=53)
    b1 = net.box("b1")
    b2 = net.box("b2")
    ch = net.channel(b1, b2)
    b1.open_slot(ch.end_for(b1).slot(), AUDIO)
    b2.hold_slot(ch.end_for(b2).slot())
    path = trace_path(ch.end_for(b1).slot())
    assert path.path_type() == ("hold", "open")
    assert expected_property(path) == "recurrence-flowing"


# ----------------------------------------------------------------------
# spec predicates
# ----------------------------------------------------------------------
def test_both_flowing_on_established_call(relay):
    net, a, b, box, sa, sb = relay
    assert both_flowing(trace_path(sa))
    assert not both_closed(trace_path(sa))


def test_both_flowing_respects_mute_consistency(relay):
    net, a, b, box, sa, sb = relay
    a_slot = a.channel_ends[0].slot()
    a.modify(a_slot, mute_out=True)
    # Before the signals propagate, enabled lags the intention...
    net.settle()
    # ...afterwards bothFlowing holds again with the new mute values.
    assert both_flowing(trace_path(sa))


def test_both_closed_after_hangup(relay):
    net, a, b, box, sa, sb = relay
    a.close(a.channel_ends[0].slot())
    net.settle()
    path = trace_path(sa)
    assert both_closed(path)
    assert not both_flowing(path)


def test_server_goal_paths_check_now():
    net = Network(seed=54)
    b1 = net.box("b1")
    b2 = net.box("b2")
    ch = net.channel(b1, b2)
    s1, s2 = ch.end_for(b1).slot(), ch.end_for(b2).slot()
    b1.close_slot(s1)
    b2.hold_slot(s2)
    net.settle()
    path = trace_path(s1)
    assert expected_property(path) == "stability-closed"
    assert check_path_now(path) is None


def test_check_path_now_reports_violation():
    net = Network(seed=55)
    b1 = net.box("b1")
    b2 = net.box("b2")
    ch = net.channel(b1, b2)
    s1, s2 = ch.end_for(b1).slot(), ch.end_for(b2).slot()
    b1.open_slot(s1, AUDIO)
    b2.hold_slot(s2)
    # Deliberately do NOT settle: the path is mid-handshake, so the
    # recurrence obligation's stable reading fails right now.
    error = check_path_now(trace_path(s1))
    assert error is not None
    net.settle()
    assert check_path_now(trace_path(s1)) is None


# ----------------------------------------------------------------------
# finite-trace LTL
# ----------------------------------------------------------------------
def test_ltl_operators():
    trace = [0, 1, 2, 3, 3, 3]
    is3 = lambda s: s == 3
    assert eventually(is3, trace)
    assert not always(is3, trace)
    assert eventually_always(is3, trace)
    assert always_eventually(is3, trace)
    assert not eventually_always(lambda s: s == 2, trace)
    assert not always_eventually(lambda s: s == 2, trace)
    assert not eventually_always(is3, [])


def test_ltl_stutter_reading_matches_spec_intuition():
    # ◇□P on a trace ending in P-states: True even with early ¬P.
    trace = [False, False, True, True]
    ident = lambda s: s
    assert eventually_always(ident, trace)
    # A trailing ¬P state breaks stability.
    assert not eventually_always(ident, trace + [False])


# ----------------------------------------------------------------------
# monitor
# ----------------------------------------------------------------------
def test_monitor_passes_on_good_network(relay):
    net, a, b, box, sa, sb = relay
    monitor = PathMonitor(net)
    monitor.assert_all_conform()


def test_monitor_detects_server_path_violation():
    net = Network(seed=56)
    b1 = net.box("b1")
    b2 = net.box("b2")
    ch = net.channel(b1, b2)
    s1, s2 = ch.end_for(b1).slot(), ch.end_for(b2).slot()
    b1.open_slot(s1, AUDIO)
    b2.hold_slot(s2)
    monitor = PathMonitor(net)
    with pytest.raises(SpecViolation):
        monitor.assert_all_conform()  # mid-handshake: not yet flowing
    net.settle()
    monitor.assert_all_conform()


def test_monitor_sampling_records_history(relay):
    net, a, b, box, sa, sb = relay
    monitor = PathMonitor(net)
    monitor.sample()
    a.close(a.channel_ends[0].slot())
    net.settle()
    monitor.sample()
    key = next(iter(monitor.history))
    snapshots = monitor.history[key]
    assert snapshots[0].flowing and not snapshots[0].closed
    assert snapshots[-1].closed and not snapshots[-1].flowing
