"""Retransmit backoff arithmetic at the give-up boundary.

The slot FSM retransmits an unacknowledged ``open`` at
``initial * backoff**k`` after the k-th send, so with ``initial`` i,
``backoff`` 2, and ``max_retries`` n the retransmits land at relative
instants i, 3i, 7i, ... and the give-up fires at ``i * (2**(n+1) - 1)``.
These tests pin that arithmetic exactly — one event early and the slot
must still be trying, at the boundary it must have degraded — under
both backends (the compiled backend's receive kernel shares the timer
path with pure Python).
"""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.network.backend import compiled_available
from repro.network.address import Address
from repro.network.eventloop import EventLoop
from repro.protocol.channel import SignalingAgent, SignalingChannel
from repro.protocol.codecs import AUDIO, G711
from repro.protocol.descriptor import DescriptorFactory, Selector
from repro.protocol.slot import RetransmitPolicy

_SRC = os.path.normpath(os.path.join(
    os.path.dirname(__file__), "..", "..", "src"))


class _Quiet(SignalingAgent):
    def on_tunnel_signal(self, slot, signal):
        pass

    def on_meta(self, end, signal):
        pass


def _black_hole(policy):
    """A channel whose link is down for good: every send vanishes, so
    the opener walks its full retransmit schedule."""
    loop = EventLoop()
    a, b = _Quiet(loop, "a"), _Quiet(loop, "b")
    ch = SignalingChannel(loop, a, b, retransmit=policy)
    ch.link.down = True
    slot = ch.ends[0].slot()
    desc = DescriptorFactory("a").descriptor(
        Address("10.0.0.1", 10000), (G711,))
    slot.send_open(AUDIO, desc)
    return loop, slot


def give_up_instant(policy):
    """Closed form of the schedule: i * (b**(n+1) - 1) / (b - 1)."""
    i, b, n = policy.initial, policy.backoff, policy.max_retries
    return i * (b ** (n + 1) - 1) / (b - 1)


@pytest.mark.parametrize("policy", [
    RetransmitPolicy(initial=0.25, backoff=2.0, max_retries=3,
                     stale_after=0.0),
    RetransmitPolicy(initial=0.1, backoff=2.0, max_retries=6,
                     stale_after=0.0),
    RetransmitPolicy(initial=0.5, backoff=3.0, max_retries=2,
                     stale_after=0.0),
])
def test_retransmits_land_on_the_closed_form_schedule(policy):
    loop, slot = _black_hole(policy)
    expected = 0.0
    for k in range(policy.max_retries):
        expected += policy.initial * policy.backoff ** k
        loop.advance(expected - loop.now)
        assert slot.retransmits == k + 1, "retransmit %d late" % (k + 1)
        assert not slot.failed
    # The give-up timer is one more backoff step out.
    boundary = give_up_instant(policy)
    loop.advance((boundary - loop.now) * 0.999)
    assert not slot.failed and slot.state == "opening"
    loop.run()
    assert loop.now == pytest.approx(boundary)
    assert slot.failed and slot.state == "closed"
    assert slot.retransmits == policy.max_retries
    assert loop.pending() == 0


def test_quarter_second_doubling_gives_up_at_3_75s():
    """The soak harness's policy (0.25s initial, x2, 3 retries) pinned
    to its absolute instants: retransmits at 0.25, 0.75, 1.75 and the
    noMedia degradation at exactly 3.75 simulated seconds."""
    policy = RetransmitPolicy(initial=0.25, backoff=2.0, max_retries=3,
                              stale_after=0.0)
    loop, slot = _black_hole(policy)
    seen = []
    for t in (0.25, 0.75, 1.75, 3.75):
        loop.advance(t - loop.now)
        seen.append((loop.now, slot.retransmits, slot.failed))
    assert seen == [(0.25, 1, False), (0.75, 2, False),
                    (1.75, 3, False), (3.75, 3, True)]
    assert give_up_instant(policy) == 3.75


def test_zero_retries_means_one_shot():
    policy = RetransmitPolicy(initial=0.25, backoff=2.0, max_retries=0,
                              stale_after=0.0)
    loop, slot = _black_hole(policy)
    loop.run()
    assert slot.retransmits == 0 and slot.failed
    assert loop.now == pytest.approx(0.25)  # gave up at the first timer


def test_stale_redescribe_budget_exhausts_at_the_same_closed_form():
    """The staleness re-describe walks the same geometric schedule
    (``stale_after * backoff**k``), and its budget exhausts exactly at
    the boundary instant — but unlike a dead handshake, a mute
    selector is application-visible, so the slot must stay flowing
    with no forced failure and no timer left ticking."""
    policy = RetransmitPolicy(initial=0.25, backoff=2.0, max_retries=2,
                              stale_after=0.5)
    loop = EventLoop()
    a, b = _Quiet(loop, "a"), _Quiet(loop, "b")
    ch = SignalingChannel(loop, a, b, retransmit=policy)
    sa, sb = ch.ends[0].slot(), ch.ends[1].slot()
    fa, fb = DescriptorFactory("a"), DescriptorFactory("b")
    first = fa.descriptor(Address("10.0.0.1", 10000), (G711,))
    sa.send_open(AUDIO, first)
    loop.advance(0.1)
    sb.send_oack(fb.descriptor(Address("10.0.0.2", 20000), (G711,)))
    loop.advance(0.1)
    assert sa.is_flowing and sb.is_flowing
    # b answers, so the handshake's own staleness recovery stands down.
    sb.send_select(Selector(answers=first.id, address=None, codec=G711))
    loop.advance(0.1)
    assert sa.selector_received is not None
    # A fresh descriptor over a dead wire: the answer on file names the
    # old id, so every staleness timer finds it unanswered.
    ch.link.down = True
    fresh = fa.descriptor(Address("10.0.0.1", 10002), (G711,))
    t0 = loop.now
    sa.send_describe(fresh)
    base = sa.retransmits
    expected = 0.0
    for k in range(policy.max_retries):
        expected += policy.stale_after * policy.backoff ** k
        loop.advance(t0 + expected - loop.now)
        assert sa.retransmits == base + k + 1
    # The budget-exhausted check fires one backoff step later — the
    # boundary instant of the same closed form, scaled by stale_after.
    boundary = t0 + policy.stale_after \
        * (policy.backoff ** (policy.max_retries + 1) - 1) \
        / (policy.backoff - 1)
    loop.run()
    assert loop.now == pytest.approx(boundary)
    assert sa.retransmits == base + policy.max_retries
    assert sa.is_flowing and not sa.failed  # mute, not dead
    assert loop.pending() == 0


_BOUNDARY_PROBE = """
import json
from repro.network import backend
from repro.network.address import Address
from repro.network.eventloop import EventLoop
from repro.protocol.channel import SignalingAgent, SignalingChannel
from repro.protocol.codecs import AUDIO, G711
from repro.protocol.descriptor import DescriptorFactory
from repro.protocol.slot import RetransmitPolicy

class Quiet(SignalingAgent):
    def on_tunnel_signal(self, slot, signal):
        pass
    def on_meta(self, end, signal):
        pass

loop = EventLoop()
a, b = Quiet(loop, "a"), Quiet(loop, "b")
policy = RetransmitPolicy(initial=0.25, backoff=2.0, max_retries=3,
                          stale_after=0.0)
ch = SignalingChannel(loop, a, b, retransmit=policy)
ch.link.down = True
slot = ch.ends[0].slot()
desc = DescriptorFactory("a").descriptor(Address("10.0.0.1", 10000),
                                         (G711,))
slot.send_open(AUDIO, desc)
trail = []
for t in (0.25, 0.75, 1.75, 3.75):
    loop.advance(t - loop.now)
    trail.append([loop.now, slot.retransmits, slot.failed])

# The staleness budget on a fresh channel: flowing, answered, then a
# re-describe over a dead wire until the budget exhausts.
from repro.protocol.descriptor import Selector
ch2 = SignalingChannel(loop, a, b, retransmit=RetransmitPolicy(
    initial=0.25, backoff=2.0, max_retries=2, stale_after=0.5))
sa, sb = ch2.ends[0].slot(), ch2.ends[1].slot()
fa = DescriptorFactory("a2")
first = fa.descriptor(Address("10.0.0.1", 11000), (G711,))
sa.send_open(AUDIO, first)
loop.advance(0.1)
sb.send_oack(DescriptorFactory("b2").descriptor(
    Address("10.0.0.2", 21000), (G711,)))
loop.advance(0.1)
sb.send_select(Selector(answers=first.id, address=None, codec=G711))
loop.advance(0.1)
ch2.link.down = True
t0 = loop.now
sa.send_describe(fa.descriptor(Address("10.0.0.1", 11002), (G711,)))
base = sa.retransmits
stale_trail = []
for rel in (0.5, 1.5, 3.5):
    loop.advance(t0 + rel - loop.now)
    stale_trail.append([round(loop.now - t0, 6), sa.retransmits - base,
                        sa.state, sa.failed])
print(json.dumps({"backend": backend.describe()["backend"],
                  "trail": trail, "stale_trail": stale_trail,
                  "pending": loop.pending()},
                 sort_keys=True))
"""


def _probe(backend_env):
    env = {k: v for k, v in os.environ.items() if k != "REPRO_BACKEND"}
    env["REPRO_BACKEND"] = backend_env
    env["PYTHONPATH"] = _SRC
    proc = subprocess.run(
        [sys.executable, "-c", textwrap.dedent(_BOUNDARY_PROBE)],
        env=env, capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


@pytest.mark.skipif(not compiled_available(),
                    reason="compiled backend not built "
                           "(python tools/build_backend.py)")
def test_boundary_identical_under_the_compiled_backend():
    py = _probe("python")
    cc = _probe("compiled")
    assert py.pop("backend") == "python"
    assert cc.pop("backend") == "compiled"
    assert py == cc
    assert py["trail"][-1] == [3.75, 3, True]
    assert py["stale_trail"][-1] == [3.5, 2, "flowing", False]
    assert py["pending"] == 0
