"""CLI tests for ``python -m repro load``."""

import io
import json

import pytest

from repro.__main__ import main as repro_main
from repro.load.cli import main as load_main


def _bench(out_text):
    """Parse the JSON report off the end of mixed text output."""
    return json.loads(out_text[out_text.index("{"):])


def test_load_smoke_with_bench_json_on_stdout():
    out = io.StringIO()
    assert load_main(["--calls", "20", "--shards", "2",
                      "--bench-json", "-"], out=out) == 0
    payload = _bench(out.getvalue())
    assert payload["config"]["apps"] == ["relay"]
    assert payload["config"]["calls_per_app"] == 20
    run = payload["runs"]["shards=2"]
    assert run["calls_done"] == 20
    assert run["calls_per_sec"] > 0
    assert run["setup_wall_seconds"]["p95"] > 0
    assert payload["summary"]["all_ok"] is True


def test_load_single_shard_reports_speedup_vs_seed():
    out = io.StringIO()
    assert load_main(["--calls", "60", "--bench-json", "-"], out=out) == 0
    payload = _bench(out.getvalue())
    summary = payload["summary"]
    assert summary["single_process_calls_per_sec"] > 0
    # 60 calls cover one full 50-call measurement window.
    assert summary["single_process_calls_per_sec_best_window"] > 0
    # The recorded baseline ships with the repo, so the speedup field
    # must be present (its value is machine-dependent).
    assert "speedup_vs_seed" in summary


def test_load_scaling_runs_each_shard_count():
    out = io.StringIO()
    assert load_main(["--calls", "8", "--scaling", "2,1",
                      "--bench-json", "-"], out=out) == 0
    payload = _bench(out.getvalue())
    assert sorted(payload["runs"]) == ["shards=1", "shards=2"]
    assert "scaling_vs_single" in payload["summary"]


def test_load_usage_errors_exit_2():
    for argv in (["--apps", "no-such-app"],
                 ["--fault-plan", "no-such-plan"],
                 ["--calls", "0"],
                 ["--scaling", "0,2"],
                 ["--scaling", "fast"]):
        with pytest.raises(SystemExit) as exc:
            load_main(argv, out=io.StringIO())
        assert exc.value.code == 2


def test_load_fault_plan_run_exits_clean():
    out = io.StringIO()
    assert load_main(["--calls", "6", "--fault-plan", "drop10+dup10"],
                     out=out) == 0
    assert "6" in out.getvalue()


def test_load_repeat_keeps_best_run():
    out = io.StringIO()
    assert load_main(["--calls", "10", "--repeat", "3",
                      "--bench-json", "-"], out=out) == 0
    run = _bench(out.getvalue())["runs"]["shards=1"]
    assert run["repeats"] == 3
    assert len(run["calls_per_sec_runs"]) == 3
    assert run["calls_per_sec"] == max(run["calls_per_sec_runs"])


def test_load_profile_prints_cumulative_table(tmp_path, capsys):
    out = io.StringIO()
    pstats_path = tmp_path / "deep" / "load.pstats"
    assert load_main(["--calls", "5", "--profile", "--profile-top", "5",
                      "--profile-out", str(pstats_path)], out=out) == 0
    text = out.getvalue()
    assert "cumulative" in text
    assert "drive_relay" in text
    assert pstats_path.exists()
    # The dump is loadable pstats data.
    import pstats
    stats = pstats.Stats(str(pstats_path), stream=io.StringIO())
    assert stats.total_calls > 0


def test_load_profile_out_implies_profile(tmp_path):
    out = io.StringIO()
    pstats_path = tmp_path / "load.pstats"
    assert load_main(["--calls", "3",
                      "--profile-out", str(pstats_path)], out=out) == 0
    assert pstats_path.exists()


def test_load_is_wired_into_python_m_repro():
    from repro.__main__ import _DELEGATED
    assert _DELEGATED["load"][0] == "repro.load.cli"
    assert repro_main(["load", "--calls", "4"]) == 0
    # Usage errors surface through the delegation unchanged.
    with pytest.raises(SystemExit) as exc:
        repro_main(["load", "--apps", "no-such-app"])
    assert exc.value.code == 2


def test_load_bench_json_writes_file(tmp_path):
    path = tmp_path / "reports" / "BENCH_load.json"
    assert load_main(["--calls", "4", "--bench-json", str(path)],
                     out=io.StringIO()) == 0
    payload = json.loads(path.read_text())
    assert payload["runs"]["shards=1"]["calls_done"] == 4
