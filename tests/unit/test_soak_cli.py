"""Unit tests for the ``repro soak`` command-line interface."""

import io
import json

import pytest

from repro.load.soak_cli import build_parser, main as soak_main


_SMOKE = ["--epochs", "4", "--epoch-seconds", "0.5", "--no-gate"]


def test_help_names_the_profiles_and_gates():
    text = build_parser().format_help()
    assert "repro soak" in text
    assert "--profile" in text and "--bench-json" in text
    for name in ("steady", "overload", "churn"):
        assert name in text


def test_list_profiles():
    out = io.StringIO()
    assert soak_main(["--list-profiles"], out=out) == 0
    listing = out.getvalue()
    for name in ("steady", "overload", "churn"):
        assert name in listing
    assert "admission caps" in listing  # overload advertises its limits


def test_usage_errors_exit_2():
    for argv in (["--profile", "no-such-profile"],
                 ["--epochs", "0"],
                 ["--epoch-seconds", "-1"]):
        with pytest.raises(SystemExit) as exc:
            soak_main(argv, out=io.StringIO())
        assert exc.value.code == 2


def test_smoke_run_reports_one_line_per_profile():
    out = io.StringIO()
    assert soak_main(_SMOKE, out=out) == 0
    text = out.getvalue()
    assert text.startswith("steady")
    assert "gate=ok" in text and "safety=ok" in text


def test_bench_json_written_to_file(tmp_path):
    path = tmp_path / "BENCH_soak.json"
    out = io.StringIO()
    assert soak_main(_SMOKE + ["--bench-json", str(path)], out=out) == 0
    payload = json.loads(path.read_text())
    assert payload["config"]["profiles"] == ["steady"]
    assert payload["summary"]["all_ok"] is True
    assert payload["summary"]["safety_violations"] == 0
    run = payload["runs"]["steady"]
    assert run["sessions"]["started"] > 0
    assert len(run["epochs"]) == 4
    assert run["metrics"]["counters"]["soak.sessions.started"] \
        == run["sessions"]["started"]


def test_multiple_profiles_aggregate_in_the_summary():
    out = io.StringIO()
    code = soak_main(["--profile", "steady", "--profile", "churn",
                      "--bench-json", "-"] + _SMOKE[:4] + ["--no-gate"],
                     out=out)
    assert code == 0
    text = out.getvalue()
    payload = json.loads(text[text.index("{"):])
    assert set(payload["runs"]) == {"steady", "churn"}
    assert payload["summary"]["total_sessions"] == sum(
        r["sessions"]["started"] for r in payload["runs"].values())


def test_soak_is_wired_into_python_m_repro():
    from repro.__main__ import _DELEGATED, main as repro_main
    assert "soak" in _DELEGATED
    assert repro_main(["soak", "--list-profiles"]) == 0
    with pytest.raises(SystemExit):
        repro_main(["soak", "--profile", "no-such-profile"])
