"""Unit tests for admission control: policy limits, the busy refusal,
and the retry-to-noMedia degradation path."""

import pytest

from repro.core.admission import AdmissionControl, AdmissionPolicy
from repro.network.eventloop import EventLoop
from repro.network.network import Network
from repro.protocol.codecs import AUDIO
from repro.protocol.signals import Busy
from repro.protocol.slot import RetransmitPolicy


# ----------------------------------------------------------------------
# AdmissionControl bookkeeping (fake slots: only ``is_live`` and the
# tenant identity matter to the ledger)
# ----------------------------------------------------------------------
class _FakeEnd:
    def __init__(self, tenant):
        self.tenant = tenant


class _FakeSlot:
    def __init__(self, tenant="t0"):
        self.channel_end = _FakeEnd(tenant)
        self.is_live = True


def test_default_policy_admits_everything():
    ctl = AdmissionControl(EventLoop(), AdmissionPolicy())
    for i in range(100):
        assert ctl.admit(_FakeSlot("t%d" % (i % 3))) is None
    assert ctl.admitted == 100
    assert ctl.shed_total == 0


def test_max_concurrent_caps_and_prunes_lazily():
    ctl = AdmissionControl(EventLoop(), AdmissionPolicy(max_concurrent=2))
    first, second = _FakeSlot(), _FakeSlot()
    assert ctl.admit(first) is None
    assert ctl.admit(second) is None
    assert ctl.admit(_FakeSlot()) == "concurrent"
    assert ctl.active_count() == 2
    # A slot whose episode ended stops counting at the next evaluation
    # — no hook on the close path.
    first.is_live = False
    assert ctl.admit(_FakeSlot()) is None
    assert ctl.active_count() == 2
    assert ctl.counters() == {"admitted": 3, "shed_rate": 0,
                              "shed_concurrent": 1, "shed_tenant": 0}


def test_per_tenant_cap_isolates_the_heavy_hitter():
    ctl = AdmissionControl(
        EventLoop(), AdmissionPolicy(per_tenant_concurrent=1))
    hog = _FakeSlot("hog")
    assert ctl.admit(hog) is None
    assert ctl.admit(_FakeSlot("hog")) == "tenant"
    # Another tenant is unaffected by the hog's full bucket.
    assert ctl.admit(_FakeSlot("quiet")) is None
    assert ctl.tenant_count("hog") == 1
    assert ctl.tenant_count("quiet") == 1
    assert ctl.shed_tenant == 1
    # The hog's call ending frees the bucket.
    hog.is_live = False
    assert ctl.admit(_FakeSlot("hog")) is None


def test_token_bucket_refills_on_the_simulated_clock():
    loop = EventLoop()
    ctl = AdmissionControl(
        loop, AdmissionPolicy(setup_rate=2.0, setup_burst=2))
    assert ctl.admit(_FakeSlot()) is None
    assert ctl.admit(_FakeSlot()) is None
    assert ctl.admit(_FakeSlot()) == "rate"
    assert ctl.shed_rate == 1
    # 0.5 simulated seconds at 2/s refills exactly one token.
    loop.advance(0.5)
    assert ctl.admit(_FakeSlot()) is None
    assert ctl.admit(_FakeSlot()) == "rate"
    # The bucket caps at the burst size no matter how long it idles.
    loop.advance(100.0)
    assert ctl.admit(_FakeSlot()) is None
    assert ctl.admit(_FakeSlot()) is None
    assert ctl.admit(_FakeSlot()) == "rate"


def test_rate_token_only_consumed_on_admission():
    loop = EventLoop()
    ctl = AdmissionControl(loop, AdmissionPolicy(
        max_concurrent=1, setup_rate=1.0, setup_burst=2))
    blocker = _FakeSlot()
    assert ctl.admit(blocker) is None
    # Concurrency sheds must not also drain the bucket: the second
    # token survives the burst of refusals.
    for _ in range(5):
        assert ctl.admit(_FakeSlot()) == "concurrent"
    blocker.is_live = False
    assert ctl.admit(_FakeSlot()) is None
    assert ctl.shed_concurrent == 5 and ctl.shed_rate == 0


# ----------------------------------------------------------------------
# box-level shedding: caller -> core box -> callee relay
# ----------------------------------------------------------------------
def _relay(policy, retransmit, callers=2, seed=5):
    """``callers`` devices each with a channel into one core box,
    relayed by a flowlink to an auto-accepting callee."""
    net = Network(seed=seed, retransmit=retransmit)
    core = net.box("core")
    core.set_admission(policy)
    sides = []
    for i in range(callers):
        caller = net.device("a%d" % i)
        callee = net.device("b%d" % i, auto_accept=True)
        ch_in = net.channel(caller, core)
        ch_out = net.channel(core, callee)
        core.flow_link(ch_in.end_for(core).slot(),
                       ch_out.end_for(core).slot())
        sides.append((caller, ch_in.end_for(caller).slot()))
    return net, core, sides


_FAST_RETRY = RetransmitPolicy(initial=0.25, backoff=2.0,
                               max_retries=3, stale_after=0.5)


def test_admitted_call_flows_end_to_end():
    net, core, sides = _relay(
        AdmissionPolicy(max_concurrent=4), _FAST_RETRY)
    caller, slot = sides[0]
    caller.open(slot, AUDIO)
    net.settle()
    assert slot.is_flowing
    assert core.admission.admitted == 1
    assert core.admission.shed_total == 0


def test_refused_call_retries_and_wins_when_capacity_frees():
    net, core, sides = _relay(
        AdmissionPolicy(max_concurrent=1), _FAST_RETRY)
    (a0, s0), (a1, s1) = sides
    a0.open(s0, AUDIO)
    net.settle()
    assert s0.is_flowing
    a1.open(s1, AUDIO)
    net.run(0.1)  # the refusal lands; the first retry (0.25s) has not
    assert not s1.is_flowing and s1.busy_refusals == 1
    # capacity frees before the retry budget runs out...
    a0.close(s0)
    net.run(10.0)
    # ...and the backoff retry succeeds without user intervention.
    assert s1.is_flowing and not s1.failed
    assert core.admission.admitted == 2
    assert core.admission.shed_concurrent >= 1


def test_budget_exhaustion_degrades_to_nomedia():
    net, core, sides = _relay(
        AdmissionPolicy(max_concurrent=1), _FAST_RETRY)
    (a0, s0), (a1, s1) = sides
    a0.open(s0, AUDIO)
    net.settle()
    a1.open(s1, AUDIO)
    net.run(30.0)  # far past the give-up boundary; s0 never hangs up
    assert s0.is_flowing            # the admitted call is untouched
    assert s1.is_closed and s1.failed
    assert s1.busy_refusals == _FAST_RETRY.max_retries + 1
    # The endpoint saw the degradation: the port fell back to noMedia.
    assert ("t0", "busy") in a1.failed_ports
    assert net.plane.silent(a1)
    assert core.admission.shed_concurrent == s1.busy_refusals
    net.settle()
    assert net.loop.pending() == 0  # no busy-retry timer left ticking


def test_retry_after_hint_stretches_the_backoff():
    hinted = AdmissionPolicy(max_concurrent=1, retry_after=2.0)
    net, core, sides = _relay(hinted, _FAST_RETRY)
    (a0, s0), (a1, s1) = sides
    a0.open(s0, AUDIO)
    net.settle()
    a1.open(s1, AUDIO)
    net.run(0.1)
    refusals = s1.busy_refusals
    assert refusals == 1
    # The policy's own backoff (0.25s) would retry well within 1s, but
    # the box asked for 2.0s: nothing happens for the hinted window.
    net.run(1.5)
    assert s1.busy_refusals == refusals
    net.run(1.0)
    assert s1.busy_refusals == refusals + 1


def test_busy_signal_shape():
    sig = Busy()
    assert sig.kind == "busy"
    assert sig.reason == "admission" and sig.retry_after == 0.0
    with pytest.raises(AttributeError):
        sig.reason = "other"  # frozen, like every wire signal


def test_user_reopen_resets_the_busy_budget():
    net, core, sides = _relay(
        AdmissionPolicy(max_concurrent=1), _FAST_RETRY)
    (a0, s0), (a1, s1) = sides
    a0.open(s0, AUDIO)
    net.settle()
    a1.open(s1, AUDIO)
    net.run(30.0)
    assert s1.failed  # first attempt exhausted its retry budget
    a0.close(s0)
    net.settle()
    # A fresh user-initiated open starts a fresh budget and succeeds.
    a1.open(s1, AUDIO)
    net.settle()
    assert s1.is_flowing and not s1.failed


def test_set_admission_none_removes_the_limits():
    net, core, sides = _relay(
        AdmissionPolicy(max_concurrent=1), _FAST_RETRY)
    core.set_admission(None)
    assert core.admission is None
    for caller, slot in sides:
        caller.open(slot, AUDIO)
    net.settle()
    assert all(slot.is_flowing for _, slot in sides)
