"""Unit tests for the state-oriented program framework (Sec. IV)."""

import pytest

from repro import AUDIO, Network
from repro.core.predicates import (all_of, always, any_of, is_closed,
                                   is_flowing, negate)
from repro.core.program import (END, Program, State, Timeout, Transition,
                                close_slot, flow_link, hold_slot, on_meta,
                                open_slot)
from repro.protocol.errors import ConfigurationError
from repro.protocol.signals import AppMeta


@pytest.fixture
def rig():
    net = Network(seed=41)
    box = net.box("srv")
    dev = net.device("dev", auto_accept=True)
    ch = net.channel(box, dev)
    box.name_slot("s", ch.end_for(box).slot())
    return net, box, dev, ch


def test_initial_state_goals_installed(rig):
    net, box, dev, ch = rig
    program = Program(box, {
        "start": State(goals=(open_slot("s", AUDIO),)),
    }, initial="start")
    program.start()
    net.settle()
    assert box.slot("s").is_flowing


def test_transition_on_slot_predicate(rig):
    net, box, dev, ch = rig
    visited = []
    program = Program(box, {
        "opening": State(
            goals=(open_slot("s", AUDIO),),
            transitions=(Transition(is_flowing("s"), "done",
                                    action=lambda p: visited.append(1)),)),
        "done": State(goals=(hold_slot("s"),)),
    }, initial="opening")
    program.start()
    net.settle()
    assert program.state_name == "done"
    assert visited == [1]


def test_goal_object_reused_for_identical_annotation(rig):
    net, box, dev, ch = rig
    program = Program(box, {
        "one": State(goals=(open_slot("s", AUDIO),),
                     transitions=(Transition(is_flowing("s"), "two"),)),
        "two": State(goals=(open_slot("s", AUDIO),)),
    }, initial="one")
    program.start()
    goal_before = box.maps.goal_for(box.slot("s"))
    net.settle()
    assert program.state_name == "two"
    assert box.maps.goal_for(box.slot("s")) is goal_before


def test_goal_object_replaced_for_different_annotation(rig):
    net, box, dev, ch = rig
    program = Program(box, {
        "one": State(goals=(open_slot("s", AUDIO),),
                     transitions=(Transition(is_flowing("s"), "two"),)),
        "two": State(goals=(hold_slot("s"),)),
    }, initial="one")
    program.start()
    goal_before = box.maps.goal_for(box.slot("s"))
    net.settle()
    assert box.maps.goal_for(box.slot("s")) is not goal_before
    assert not goal_before.attached


def test_timeout_transition(rig):
    net, box, dev, ch = rig
    program = Program(box, {
        "wait": State(timeout=Timeout(2.0, "after")),
        "after": State(),
    }, initial="wait")
    program.start()
    net.run(1.0)
    assert program.state_name == "wait"
    net.run(1.5)
    assert program.state_name == "after"


def test_timeout_cancelled_by_transition(rig):
    net, box, dev, ch = rig
    fired = []
    program = Program(box, {
        "wait": State(
            goals=(open_slot("s", AUDIO),),
            transitions=(Transition(is_flowing("s"), "done"),),
            timeout=Timeout(5.0, END, action=lambda p: fired.append(1))),
        "done": State(goals=(hold_slot("s"),)),
    }, initial="wait")
    program.start()
    net.settle()     # flows immediately; timeout must not fire later
    net.run(10.0)
    assert program.state_name == "done"
    assert fired == []


def test_meta_event_guard_consumes_matching_event(rig):
    net, box, dev, ch = rig
    program = Program(box, {
        "wait": State(transitions=(
            Transition(on_meta("app", "go"), "done"),)),
        "done": State(),
    }, initial="wait")
    program.start()
    ch.end_for(dev).send_meta(AppMeta("other"))
    net.settle()
    assert program.state_name == "wait"
    ch.end_for(dev).send_meta(AppMeta("go"))
    net.settle()
    assert program.state_name == "done"
    assert program.trigger[1].name == "go"


def test_end_terminates_and_releases_goals(rig):
    net, box, dev, ch = rig
    program = Program(box, {
        "one": State(goals=(open_slot("s", AUDIO),),
                     transitions=(Transition(is_flowing("s"), END),)),
    }, initial="one")
    program.start()
    net.settle()
    assert program.finished
    assert box.maps.goal_for(box.slot("s")) is None
    assert box.program is None


def test_undefined_target_rejected(rig):
    net, box, dev, ch = rig
    with pytest.raises(ConfigurationError):
        Program(box, {
            "one": State(transitions=(Transition(always, "nowhere"),)),
        }, initial="one")


def test_undefined_initial_rejected(rig):
    net, box, dev, ch = rig
    with pytest.raises(ConfigurationError):
        Program(box, {"one": State()}, initial="zero")


def test_undeclared_annotation_slot_rejected_at_construction(rig):
    """Fail fast: a GoalSpec naming a slot the box never declared is a
    ConfigurationError when the Program is built, not when it starts."""
    net, box, dev, ch = rig   # rig declares slot "s" only
    with pytest.raises(ConfigurationError) as err:
        Program(box, {
            "one": State(goals=(hold_slot("typo"),)),
        }, initial="one")
    assert "typo" in str(err.value)


def test_slots_parameter_extends_declarations(rig):
    """A Program may declare slots up front (channels bound lazily)."""
    net, box, dev, ch = rig
    program = Program(box, {
        "one": State(goals=(hold_slot("later"),)),
    }, initial="one", slots=("later",))
    assert "later" in program.declared_slots


def test_duplicate_slot_annotation_rejected(rig):
    net, box, dev, ch = rig
    program = Program(box, {
        "bad": State(goals=(open_slot("s", AUDIO), hold_slot("s"))),
    }, initial="bad")
    with pytest.raises(ConfigurationError):
        program.start()


def test_guard_combinators(rig):
    net, box, dev, ch = rig
    program = Program(box, {"s": State()}, initial="s")
    program.start()
    t = always
    assert all_of(t, t)(program)
    assert not all_of(t, negate(t))(program)
    assert any_of(negate(t), t)(program)
    assert is_closed("s")(program)          # slot exists, closed
    assert not is_flowing("s")(program)
    assert not is_closed("missing")(program)  # unbound name: False


def test_prepaid_program_cycles(rig):
    """The Sec. IV-B two-state PC program shape: timeout one way, meta
    event the other."""
    net, box, dev, ch = rig
    box.name_slot("x", box.slot("s"))
    program = Program(box, {
        "talking": State(goals=(hold_slot("s"),),
                         timeout=Timeout(1.0, "collect")),
        "collect": State(goals=(hold_slot("s"),),
                         transitions=(
                             Transition(on_meta("app", "user-paid"),
                                        "talking"),)),
    }, initial="talking")
    program.start()
    net.run(1.5)
    assert program.state_name == "collect"
    ch.end_for(dev).send_meta(AppMeta("user-paid"))
    net.run(0.1)
    assert program.state_name == "talking"
    net.run(1.5)
    assert program.state_name == "collect"
