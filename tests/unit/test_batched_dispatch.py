"""Tests for the two-lane batched drain (PR 6).

These pin the invariants the batched dispatch rewrite must preserve:
same-timestamp bursts drain in strict ``(time, priority, seq)`` order
across both lanes, cancellation works mid-batch, tombstones never
consume event budget, and the deferred counter flush survives a
raising callback.  They run identically under both backends (the CI
compiled job re-runs this module with ``REPRO_BACKEND=compiled``).
"""

from __future__ import annotations

import pytest

from repro.network.eventloop import EventLoop, QuiescenceError


def test_same_timestamp_burst_merges_lanes_by_seq():
    # Events scheduled *before* the clock reaches t sit in the heap;
    # events scheduled *at* t (by a callback running at t) sit in the
    # ready lane.  The drain must interleave them in seq order.
    loop = EventLoop()
    out = []

    def b():
        out.append("b")
        loop.call_soon(out.append, "lane")  # seq 3, after h1/h2

    loop.schedule(1.0, b)                   # seq 0
    loop.schedule(1.0, out.append, "h1")    # seq 1
    loop.schedule(1.0, out.append, "h2")    # seq 2
    loop.run()
    assert out == ["b", "h1", "h2", "lane"]


def test_priority_splits_a_same_instant_batch():
    # Negative priorities (heap) fire before the ready lane, positive
    # after it, seq breaks ties inside each class.
    loop = EventLoop()
    out = []

    def burst():
        loop.call_soon(out.append, "r1")
        loop.schedule(0.0, out.append, "r2")           # lane (prio 0)
        loop.schedule(0.0, out.append, "p-", priority=-1)
        loop.schedule(0.0, out.append, "p+", priority=1)
        loop.call_soon(out.append, "r3")

    loop.schedule(1.0, burst)
    loop.run()
    assert out == ["p-", "r1", "r2", "r3", "p+"]


def test_schedule_at_clamp_drift_joins_the_current_batch():
    # (now + dt) - dt is not always >= now in binary floating point;
    # an absolute timestamp a rounding error in the past is clamped to
    # the current instant and joins the in-progress batch in seq order.
    loop = EventLoop()
    out = []

    def first():
        out.append("first")
        loop.call_soon(out.append, "second")
        drifted = loop.now - 1e-12          # sub-tolerance drift
        ev = loop.schedule_at(drifted, out.append, "clamped")
        assert ev.time == loop.now          # clamped, not in the past

    loop.schedule(0.30000000000000004, first)
    loop.run()
    assert out == ["first", "second", "clamped"]


def test_schedule_at_genuinely_past_still_raises():
    loop = EventLoop()
    loop.schedule(1.0, lambda: None)
    loop.run()
    with pytest.raises(ValueError):
        loop.schedule_at(loop.now - 0.5, lambda: None)


def test_cancellation_inside_a_draining_batch():
    # An early event in a same-instant batch cancels a later one that
    # is already sitting in the ready lane: the tombstone must be
    # skipped, not fired, and the live counter must end at zero.
    loop = EventLoop()
    out = []
    holder = {}

    def a():
        out.append("a")
        holder["c"].cancel()

    def burst():
        loop.call_soon(a)
        holder["c"] = loop.call_soon(out.append, "c")
        loop.call_soon(out.append, "d")

    loop.schedule(1.0, burst)
    n = loop.run()
    assert out == ["a", "d"]
    assert loop.pending() == 0
    # burst, a, d executed; the cancelled c did not count
    assert n == 3


def test_lane_callback_can_cancel_same_instant_heap_event():
    # Positive-priority events at the same instant live in the heap
    # behind the lane; a lane callback may cancel one mid-batch.
    loop = EventLoop()
    out = []
    holder = {}

    def burst():
        holder["p"] = loop.schedule(0.0, out.append, "p", priority=1)
        loop.call_soon(lambda: holder["p"].cancel())
        loop.call_soon(out.append, "lane")

    loop.schedule(1.0, burst)
    loop.run()
    assert out == ["lane"]
    assert loop.pending() == 0


def test_tombstones_do_not_consume_the_event_budget():
    loop = EventLoop()
    out = []
    events = [loop.schedule(1.0 + i * 0.001, out.append, i)
              for i in range(10)]
    for ev in events[:5]:
        ev.cancel()
    executed = loop.run(max_events=5)
    assert executed == 5
    assert out == [5, 6, 7, 8, 9]


def test_run_until_quiescent_with_cancelled_dominated_heap_front():
    # Regression (satellite b): a heap whose front is mostly tombstones
    # (timer-heavy runs after mass cancellation) must quiesce without
    # the tombstones eating the budget or inflating the executed count.
    loop = EventLoop()
    out = []
    events = [loop.schedule(1.0 + i * 0.001, out.append, i)
              for i in range(60)]
    for ev in events[:40]:       # <= 64 total: below the compaction
        ev.cancel()              # trigger, so the tombstones stay put
    assert len(loop._heap) == 60
    executed = loop.run_until_quiescent(max_events=20)
    assert executed == 20
    assert out == list(range(40, 60))
    assert loop.pending() == 0


def test_quiescence_error_reports_the_live_front_past_tombstones():
    loop = EventLoop()

    def rearm():
        loop.schedule(1.0, rearm)

    loop.schedule(1.0, rearm)
    doomed = [loop.schedule(0.5, lambda: None) for _ in range(30)]
    for ev in doomed:
        ev.cancel()
    with pytest.raises(QuiescenceError) as excinfo:
        loop.run_until_quiescent(max_events=10)
    err = excinfo.value
    assert err.max_events == 10
    assert err.pending == 1
    assert "rearm" in err.next_event


def test_mass_cancellation_compacts_the_heap():
    # Once the heap is majority tombstones (and big enough to matter),
    # cancel() compacts it in place so push/pop log factors track the
    # live population.
    loop = EventLoop()
    out = []
    events = [loop.schedule(1.0 + i * 0.001, out.append, i)
              for i in range(100)]
    for ev in events[:60]:
        ev.cancel()
    assert loop.pending() == 40
    assert len(loop._heap) < 100     # compaction fired at some cancel
    loop.run()
    assert out == list(range(60, 100))


def test_counters_are_flushed_when_a_callback_raises():
    # The drain defers the executed/live flush to a finally block; a
    # raising callback mid-batch must leave both counters consistent
    # and the rest of the batch still runnable.
    loop = EventLoop()
    out = []

    def boom():
        raise RuntimeError("mid-batch failure")

    loop.call_soon(out.append, "a")
    loop.call_soon(boom)
    loop.call_soon(out.append, "c")
    with pytest.raises(RuntimeError):
        loop.run()
    assert out == ["a"]
    assert loop.executed == 2        # a + boom; c never ran
    assert loop.pending() == 1       # c still live
    loop.run()
    assert out == ["a", "c"]
    assert loop.executed == 3
    assert loop.pending() == 0


def test_step_and_run_agree_on_batch_order():
    loop_a, loop_b = EventLoop(), EventLoop()
    order_a, order_b = [], []
    for loop, order in ((loop_a, order_a), (loop_b, order_b)):
        def burst(loop=loop, order=order):
            loop.call_soon(order.append, "x")
            loop.schedule(0.0, order.append, "y", priority=-1)
            loop.call_soon(order.append, "z")
        loop.schedule(1.0, burst)
    loop_a.run()
    while loop_b.step():
        pass
    assert order_a == order_b == ["y", "x", "z"]


def test_timed_run_stops_at_the_boundary():
    # A timed run must not execute events past ``until`` and must leave
    # the clock exactly at the boundary.
    loop = EventLoop()
    out = []
    loop.schedule(1.0, out.append, "t1")
    loop.schedule(2.0, out.append, "t2")
    loop.run(until=1.5)
    assert out == ["t1"]
    assert loop.now == 1.5
    loop.run()
    assert out == ["t1", "t2"]
