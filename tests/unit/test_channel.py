"""Unit tests for signaling channels, tunnels, and meta-signals."""

import pytest

from repro.network.eventloop import EventLoop
from repro.network.latency import FixedLatency
from repro.protocol.channel import SignalingChannel
from repro.protocol.codecs import AUDIO
from repro.protocol.descriptor import DescriptorFactory
from repro.protocol.errors import ConfigurationError
from repro.protocol.signals import AppMeta, Available, ChannelUp, Unavailable

from .test_slot import Recorder


@pytest.fixture
def loop():
    return EventLoop()


def test_channel_up_meta_reaches_responder(loop):
    a, b = Recorder(loop, "a"), Recorder(loop, "b")
    SignalingChannel(loop, a, b, target="sip:bob")
    loop.run()
    assert len(b.metas) == 1
    end, signal = b.metas[0]
    assert isinstance(signal, ChannelUp)
    assert signal.target == "sip:bob"
    assert end.owner is b


def test_multiple_tunnels_are_independent(loop):
    a, b = Recorder(loop, "a"), Recorder(loop, "b")
    ch = SignalingChannel(loop, a, b, tunnel_ids=("video", "audio-en"))
    f = DescriptorFactory("a")
    ch.ends[0].slot("video").send_open("video", f.no_media())
    loop.run()
    assert ch.ends[1].slot("video").state == "opened"
    assert ch.ends[1].slot("audio-en").state == "closed"


def test_unknown_tunnel_rejected(loop):
    a, b = Recorder(loop, "a"), Recorder(loop, "b")
    ch = SignalingChannel(loop, a, b)
    with pytest.raises(ConfigurationError):
        ch.ends[0].slot("nope")


def test_duplicate_tunnel_ids_rejected(loop):
    a, b = Recorder(loop, "a"), Recorder(loop, "b")
    with pytest.raises(ConfigurationError):
        SignalingChannel(loop, a, b, tunnel_ids=("t", "t"))


def test_no_tunnels_rejected(loop):
    a, b = Recorder(loop, "a"), Recorder(loop, "b")
    with pytest.raises(ConfigurationError):
        SignalingChannel(loop, a, b, tunnel_ids=())


def test_self_channel_rejected(loop):
    a = Recorder(loop, "a")
    with pytest.raises(ConfigurationError):
        SignalingChannel(loop, a, a)


def test_availability_meta_signals(loop):
    a, b = Recorder(loop, "a"), Recorder(loop, "b")
    ch = SignalingChannel(loop, a, b)
    ch.ends[1].send_meta(Available())
    ch.ends[1].send_meta(Unavailable(reason="busy"))
    loop.run()
    kinds = [s.kind for _, s in a.metas]
    assert kinds == ["available", "unavailable"]


def test_app_meta_payload(loop):
    a, b = Recorder(loop, "a"), Recorder(loop, "b")
    ch = SignalingChannel(loop, a, b)
    ch.ends[0].send_meta(AppMeta("user-paid", {"amount": 5}))
    loop.run()
    __, signal = b.metas[-1]
    assert signal.name == "user-paid"
    assert signal.payload["amount"] == 5


def test_teardown_notifies_peer_and_closes_slots(loop):
    a, b = Recorder(loop, "a"), Recorder(loop, "b")
    gone = []
    b.on_channel_gone = lambda end: gone.append(end)
    ch = SignalingChannel(loop, a, b, latency=FixedLatency(0.1))
    f = DescriptorFactory("a")
    ch.ends[0].slot().send_open(AUDIO, f.no_media())
    loop.run()
    assert ch.ends[1].slot().state == "opened"
    ch.ends[0].tear_down()
    assert ch.ends[0].slot().state == "closed"   # local side dies now
    assert not ch.ends[0].alive
    loop.run()
    assert not ch.ends[1].alive                  # peer dies on arrival
    assert ch.ends[1].slot().state == "closed"
    assert gone and gone[0].owner is b
    assert not ch.active


def test_teardown_is_idempotent(loop):
    a, b = Recorder(loop, "a"), Recorder(loop, "b")
    ch = SignalingChannel(loop, a, b)
    ch.ends[0].tear_down()
    ch.ends[0].tear_down()
    loop.run()
    assert not ch.active


def test_simultaneous_teardown_from_both_sides(loop):
    a, b = Recorder(loop, "a"), Recorder(loop, "b")
    ch = SignalingChannel(loop, a, b, latency=FixedLatency(0.1))
    ch.ends[0].tear_down()
    ch.ends[1].tear_down()
    loop.run()
    assert not ch.active


def test_sends_after_teardown_are_dropped(loop):
    a, b = Recorder(loop, "a"), Recorder(loop, "b")
    ch = SignalingChannel(loop, a, b)
    ch.ends[0].tear_down()
    loop.run()
    f = DescriptorFactory("b")
    ch.ends[1].send_meta(Available())  # silently dropped
    loop.run()
    assert a.metas == []


def test_in_flight_signal_toward_torn_down_end_dropped(loop):
    a, b = Recorder(loop, "a"), Recorder(loop, "b")
    ch = SignalingChannel(loop, a, b, latency=FixedLatency(0.1))
    f = DescriptorFactory("b")
    ch.ends[1].slot().send_open(AUDIO, f.no_media())  # in flight toward a
    ch.ends[0].tear_down()                            # a dies immediately
    loop.run()
    assert a.seen == []  # the open never reached a's program


def test_end_for_lookup(loop):
    a, b = Recorder(loop, "a"), Recorder(loop, "b")
    c = Recorder(loop, "c")
    ch = SignalingChannel(loop, a, b)
    assert ch.end_for(a).owner is a
    assert ch.end_for(b).owner is b
    with pytest.raises(ConfigurationError):
        ch.end_for(c)


def test_processing_cost_paid_per_stimulus():
    loop = EventLoop()
    a = Recorder(loop, "a")
    b = Recorder(loop, "b")
    b.node.cost = 0.02
    ch = SignalingChannel(loop, a, b, latency=FixedLatency(0.1))
    f = DescriptorFactory("a")
    ch.ends[0].slot().send_open(AUDIO, f.no_media())
    times = []
    original = b.on_tunnel_signal

    def timed(slot, signal):
        times.append(loop.now)
        original(slot, signal)

    b.on_tunnel_signal = timed
    loop.run()
    # channel-up meta (0.1 + 0.02) then open (0.1 arrival + queued 0.02
    # after the meta finishes at 0.12) => open handled at 0.14.
    assert times == [pytest.approx(0.14)]


# ----------------------------------------------------------------------
# teardown races: signals meeting a half-torn-down channel, both orders
# ----------------------------------------------------------------------
def test_teardown_race_initiator_first(loop):
    """Initiator tears down while the responder's signal is in flight
    toward it: the signal dies at the dead end, without raising."""
    a, b = Recorder(loop, "a"), Recorder(loop, "b")
    ch = SignalingChannel(loop, a, b, latency=FixedLatency(0.1))
    f = DescriptorFactory("b")
    ch.ends[1].slot().send_open(AUDIO, f.no_media())  # toward a
    ch.ends[0].tear_down()                            # a dies first
    loop.run()
    assert a.seen == []
    assert not ch.ends[0].alive and not ch.ends[1].alive
    assert not ch.active


def test_teardown_race_responder_first(loop):
    """Same race, other order: the responder tears down while the
    initiator's signal is in flight toward it."""
    a, b = Recorder(loop, "a"), Recorder(loop, "b")
    ch = SignalingChannel(loop, a, b, latency=FixedLatency(0.1))
    f = DescriptorFactory("a")
    ch.ends[0].slot().send_open(AUDIO, f.no_media())  # toward b
    ch.ends[1].tear_down()                            # b dies first
    loop.run()
    kinds = [s.kind for _, s in b.seen]
    assert "open" not in kinds  # the in-flight open died with the end
    assert not ch.ends[0].alive and not ch.ends[1].alive
    assert not ch.active


def test_sends_into_half_torn_down_channel_are_dropped(loop):
    """Until the TearDown meta arrives, the surviving side may keep
    transmitting; deliveries at the dead end are swallowed."""
    a, b = Recorder(loop, "a"), Recorder(loop, "b")
    ch = SignalingChannel(loop, a, b, latency=FixedLatency(0.1))
    ch.ends[0].tear_down()
    # b has not heard yet (alive, link still up) and fires a burst.
    assert ch.ends[1].alive
    f = DescriptorFactory("b")
    ch.ends[1].slot().send_open(AUDIO, f.no_media())
    ch.ends[1].send_meta(Available())
    loop.run()
    assert a.seen == [] and a.metas == []
    assert not ch.active


def test_teardown_neutralizes_robust_mode_timers(loop):
    """A torn-down channel with retransmission armed must still
    quiesce: the timers find the end dead and stand down."""
    from repro.protocol.slot import RetransmitPolicy
    a, b = Recorder(loop, "a"), Recorder(loop, "b")
    ch = SignalingChannel(loop, a, b, latency=FixedLatency(0.1),
                          retransmit=RetransmitPolicy())
    f = DescriptorFactory("a")
    sa = ch.ends[0].slot()
    sa.send_open(AUDIO, f.no_media())  # arms the retx timer
    ch.ends[0].tear_down()
    loop.run_until_quiescent()
    assert sa.state == "closed"
    assert not sa.failed  # torn down, not timed out
    assert not ch.active
