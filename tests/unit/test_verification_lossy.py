"""Tests for the lossy-tunnel verification models (robustness
extension): convergence under bounded loss, the necessity of
retransmission, fault-exemption of the timer-image notifications, and
engine equivalence on the new process types."""

import pytest

from repro.verification import (LOSSY_PROPERTIES, PATH_TYPES,
                                LossyTunnelProcess,
                                ResilientEndpointProcess, all_model_specs,
                                both_flowing, build_lossy_model, explore,
                                lossy_model_specs, verify_model)

# (states, transitions) at faults=1 with default kwargs — pinned so the
# interned engine and the process models stay in exact agreement.
LOSSY_COUNTS_F1 = {
    "CC~lossy": (3132, 7202), "CH~lossy": (5464, 13665),
    "CO~lossy": (6353, 15215), "HH~lossy": (69300, 189931),
    "HO~lossy": (80865, 217969), "OO~lossy": (81354, 219153),
}


# ----------------------------------------------------------------------
# the headline theorem: convergence under loss
# ----------------------------------------------------------------------
@pytest.mark.parametrize("path_type", sorted(PATH_TYPES))
def test_lossy_model_converges_one_fault(path_type):
    result = verify_model(build_lossy_model(path_type, faults=1),
                          max_states=300_000)
    assert result.safety_ok, "safety failed for %s" % result.key
    assert result.property_ok, "spec failed for %s" % result.key
    assert not result.truncated
    assert result.property_kind == LOSSY_PROPERTIES[path_type]
    assert (result.states, result.transitions) \
        == LOSSY_COUNTS_F1[result.key]


@pytest.mark.parametrize("path_type", sorted(PATH_TYPES))
def test_lossy_model_converges_default_faults(path_type):
    """The default adversary (two faults) still converges: every path
    type satisfies its ◇□ property with zero safety violations."""
    result = verify_model(build_lossy_model(path_type),
                          max_states=2_000_000)
    assert result.ok, "%s failed under the default fault budget" \
        % result.key


def test_flowing_paths_check_stability_not_recurrence():
    """HO/OO lossy models prove ◇□ bothFlowing — strictly stronger
    than the fault-free grid's □◇."""
    assert LOSSY_PROPERTIES["HO"] == "stability-flowing"
    assert LOSSY_PROPERTIES["OO"] == "stability-flowing"
    assert PATH_TYPES["HO"][2] == "recurrence-flowing"


# ----------------------------------------------------------------------
# retransmission is necessary, and a budget matching the faults enough
# ----------------------------------------------------------------------
@pytest.mark.parametrize("path_type", sorted(PATH_TYPES))
def test_no_retransmission_breaks_every_path(path_type):
    """With the retransmission budget zeroed, one fault is enough to
    defeat every path type — the degradation half of the theorem."""
    result = verify_model(build_lossy_model(path_type, faults=1, retx=0),
                          max_states=300_000)
    assert not result.ok, "%s should break without retransmission" \
        % result.key


def test_tight_budget_suffices():
    """retx == faults already converges (one charged re-send per loss;
    goal-level re-pushes of rejected opens are free)."""
    for path_type in ("CC", "CO"):
        result = verify_model(
            build_lossy_model(path_type, faults=2, retx=2),
            max_states=300_000)
        assert result.ok, result.key


# ----------------------------------------------------------------------
# the lossy grid is an extension, not a change to the paper's twelve
# ----------------------------------------------------------------------
def test_lossy_keys_stay_out_of_base_sweep():
    specs = all_model_specs()
    assert len(specs) == 12
    assert lossy_model_specs() == list(PATH_TYPES)
    model = build_lossy_model("CC")
    assert model.key == "CC~lossy"
    assert not model.has_flowlink


def test_lossy_flowing_is_not_vacuous():
    """HO~lossy really reaches bothFlowing (a stability check would
    pass vacuously on a model that never flows)."""
    model = build_lossy_model("HO", faults=1)
    graph = explore(model.system, max_states=300_000)
    assert any(both_flowing(s.procs[model.left_index],
                            s.procs[model.right_index])
               for s in graph.states)


def test_fault_budget_is_exercised():
    """Paths where the relay actually spent its fault budget are
    reachable — the adversary is not a no-op."""
    model = build_lossy_model("CC", faults=1)
    graph = explore(model.system, max_states=300_000)
    assert any(s.procs[1].faults == 0 for s in graph.states)
    assert all(0 <= s.procs[1].faults <= 1 for s in graph.states)


# ----------------------------------------------------------------------
# the relay's fault algebra
# ----------------------------------------------------------------------
def relay():
    return LossyTunnelProcess("T", in_left=0, in_right=3,
                              out_left=1, out_right=2, faults=2)


def test_relay_forwards_drops_and_duplicates():
    t = relay()
    st = t.initial()
    assert st.faults == 2
    outcomes = t.receive(st, 0, ("open", ("L", 0)))
    assert len(outcomes) == 3
    forward, drop, dup = outcomes
    assert forward == (st, [(2, ("open", ("L", 0)))])
    assert drop[0].faults == 1
    assert drop[1] == [(1, ("lost", ("open", ("L", 0))))]
    assert dup[0].faults == 1
    assert dup[1] == [(2, ("open", ("L", 0))), (2, ("open", ("L", 0)))]


def test_relay_direction_matters():
    t = relay()
    st = t.initial()
    forward, drop, _ = t.receive(st, 3, ("close",))
    assert forward == (st, [(1, ("close",))])
    # the drop notification goes back to the right-hand sender
    assert drop[1] == [(2, ("lost", ("close",)))]


def test_relay_exhausted_budget_only_forwards():
    t = relay()
    st = t.initial()._replace(faults=0)
    outcomes = t.receive(st, 0, ("oack", ("L", 1)))
    assert outcomes == [(st, [(2, ("oack", ("L", 1)))])]


def test_notifications_are_fault_exempt():
    """Loss/rejection notifications model timers, not wire traffic:
    the relay forwards them deterministically even with budget left."""
    t = relay()
    st = t.initial()
    for kind in ("lost", "rejected"):
        outcomes = t.receive(st, 0, (kind, ("open", ("L", 0))))
        assert outcomes == [(st, [(2, (kind, ("open", ("L", 0))))])]


# ----------------------------------------------------------------------
# the resilient endpoint's retransmission timer image
# ----------------------------------------------------------------------
def endpoint(goal="close", retx=2):
    return ResilientEndpointProcess("L", goal, out_queue=0,
                                    initiator=True, retx_budget=retx)


def test_lost_closeack_is_replayed_and_charged():
    ep = endpoint()
    st = ep.initial()  # closed
    (st2, sends), = ep.receive(st, 1, ("lost", ("closeack",)))
    assert sends == [(0, ("closeack",))]
    assert st2.retx == st.retx - 1


def test_exhausted_budget_gives_up():
    ep = endpoint(retx=0)
    st = ep.initial()
    (st2, sends), = ep.receive(st, 1, ("lost", ("closeack",)))
    assert sends == []
    assert st2 == st


def test_lost_open_pinned_to_episode():
    ep = endpoint(goal="open")
    st = ep.initial()._replace(slot="opening", sent=("L", 1), phase=2)
    (st2, sends), = ep.receive(st, 1, ("lost", ("open", ("L", 1))))
    assert sends == [(0, ("open", ("L", 1)))]
    assert st2.retx == st.retx - 1
    # a notification for an earlier incarnation's open is not ours
    (st3, sends3), = ep.receive(st, 1, ("lost", ("open", ("L", 0))))
    assert sends3 == [] and st3 == st


def test_rejected_open_repush_is_free():
    ep = endpoint(goal="open")
    st = ep.initial()._replace(slot="opening", sent=("L", 1), phase=2)
    (st2, sends), = ep.receive(st, 1, ("rejected", ("open", ("L", 1))))
    assert sends == [(0, ("open", ("L", 1)))]
    assert st2.retx == st.retx  # goal-level re-push: no budget charge


def test_duplicate_close_reacked_when_closed():
    ep = endpoint()
    st = ep.initial()._replace(phase=2)
    (st2, sends), = ep.receive(st, 1, ("close",))
    assert st2.slot == "closed"
    assert sends == [(0, ("closeack",))]


def test_flowing_accepts_reopen_from_new_episode():
    """Open is unilateral and idempotent: a flowing endpoint adopts a
    new episode's descriptor, re-acks, and answers it."""
    ep = endpoint(goal="hold")
    st = ep.initial()._replace(slot="flowing", phase=2,
                               sent=("L", 0), rcvd=("R", 0))
    (st2, sends), = ep.receive(st, 1, ("open", ("R", 1)))
    assert st2.rcvd == ("R", 1)
    assert sends == [(0, ("oack", ("L", 0))), (0, ("select", ("R", 1)))]


def test_closing_drain_reflects_rejection():
    ep = endpoint()
    st = ep.initial()._replace(slot="closing", phase=2)
    (st2, sends), = ep.receive(st, 1, ("open", ("R", 1)))
    assert st2 == st
    assert sends == [(0, ("rejected", ("open", ("R", 1))))]


# ----------------------------------------------------------------------
# engine equivalence on the new process types
# ----------------------------------------------------------------------
def test_engine_matches_reference_kernel_on_lossy_model():
    model = build_lossy_model("CC", faults=1)
    graph = explore(model.system)
    engine = graph.engine
    for sid in range(graph.state_count):
        reference = model.system.successors(graph.states[sid])
        mine = [engine.decode(k)
                for k in engine.expand(graph.packed[sid])]
        assert mine == reference, "state %d diverges" % sid
