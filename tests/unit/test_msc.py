"""Unit tests for the message-sequence-chart tracer."""

import pytest

from repro import AUDIO, Network
from repro.tools import SignalTracer


@pytest.fixture
def traced_call():
    net = Network(seed=13)
    a = net.device("A")
    b = net.device("B", auto_accept=True)
    ch = net.channel(a, b)
    tracer = SignalTracer(net)
    a.open(ch.end_for(a).slot(), AUDIO)
    net.settle()
    return net, a, b, ch, tracer


def test_tracer_captures_the_handshake(traced_call):
    net, a, b, ch, tracer = traced_call
    kinds = [m.label.split("(")[0] for m in tracer.messages]
    assert kinds.count("open") == 1
    assert kinds.count("oack") == 1
    assert kinds.count("select") == 2   # one per direction


def test_tracer_records_direction(traced_call):
    net, a, b, ch, tracer = traced_call
    opens = [m for m in tracer.messages if m.label.startswith("open")]
    assert opens[0].source == "A" and opens[0].target == "B"
    oacks = [m for m in tracer.messages if m.label.startswith("oack")]
    assert oacks[0].source == "B" and oacks[0].target == "A"


def test_summary_counts(traced_call):
    net, a, b, ch, tracer = traced_call
    summary = tracer.summary()
    assert summary["open"] == 1
    assert summary["select"] == 2


def test_render_produces_columns(traced_call):
    net, a, b, ch, tracer = traced_call
    chart = tracer.render()
    lines = chart.splitlines()
    assert "A" in lines[0] and "B" in lines[0]
    assert any("open" in line for line in lines)
    assert any(">" in line for line in lines[1:])


def test_attach_is_idempotent(traced_call):
    net, a, b, ch, tracer = traced_call
    before = len(tracer)
    tracer.attach(ch)                 # second attach: no double-count
    a.modify(ch.end_for(a).slot(), mute_out=True)
    net.settle()
    new = len(tracer) - before
    # mute_out change = exactly one fresh selector, counted once even
    # though attach() was called twice.
    assert new == 1


def test_clear_resets(traced_call):
    net, a, b, ch, tracer = traced_call
    tracer.clear()
    assert len(tracer) == 0
    assert tracer.parties() == []


def test_no_media_descriptor_labelled(traced_call):
    net, a, b, ch, tracer = traced_call
    tracer.clear()
    a.modify(ch.end_for(a).slot(), mute_in=True)
    net.settle()
    labels = [m.label for m in tracer.messages]
    assert any("describe(noMedia)" in lbl for lbl in labels)
