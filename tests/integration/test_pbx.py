"""Unit/integration tests for the PBX application server itself."""

import pytest

from repro import AUDIO, Network
from repro.apps.pbx import PBX
from repro.protocol.errors import ConfigurationError


@pytest.fixture
def rig():
    net = Network(seed=61)
    pbx = net.box("pbx", cls=PBX)
    a = net.device("A")
    line = net.channel(a, pbx)
    pbx.attach_line(line)
    b = net.device("B", auto_accept=True)
    c = net.device("C", auto_accept=True)
    ch_b = net.channel(b, pbx)
    ch_c = net.channel(c, pbx)
    kb = pbx.add_call(ch_b, key="B")
    kc = pbx.add_call(ch_c, key="C")
    a.open(line.end_for(a).slot(), AUDIO)
    b.open(ch_b.end_for(b).slot(), AUDIO)
    c.open(ch_c.end_for(c).slot(), AUDIO)
    net.settle()
    return net, pbx, a, b, c, line


def test_unswitched_calls_are_held_muted(rig):
    net, pbx, a, b, c, line = rig
    # Everyone opened; nothing switched: no media anywhere.
    assert net.plane.silent(a)
    assert net.plane.silent(b)
    assert net.plane.silent(c)


def test_switching_between_calls(rig):
    net, pbx, a, b, c, line = rig
    pbx.switch_to("B")
    net.settle()
    assert net.plane.two_way(a, b) and net.plane.silent(c)
    pbx.switch_to("C")
    net.settle()
    assert net.plane.two_way(a, c) and net.plane.silent(b)
    assert pbx.active == "C"


def test_hold_all(rig):
    net, pbx, a, b, c, line = rig
    pbx.switch_to("B")
    net.settle()
    pbx.hold_all()
    net.settle()
    assert net.plane.silent(a) and net.plane.silent(b)
    assert pbx.active is None


def test_drop_call_tears_channel_down(rig):
    net, pbx, a, b, c, line = rig
    pbx.switch_to("B")
    net.settle()
    pbx.drop_call("B")
    net.settle()
    assert "B" not in pbx.call_slots
    assert pbx.active is None
    assert net.plane.silent(a)
    # The other call is intact and switchable.
    pbx.switch_to("C")
    net.settle()
    assert net.plane.two_way(a, c)


def test_incoming_channel_auto_registered():
    net = Network(seed=62)
    pbx = net.box("pbx", cls=PBX)
    a = net.device("A")
    line = net.channel(a, pbx)
    pbx.attach_line(line)
    caller_server = net.box("remote")
    net.channel(caller_server, pbx, target="A")
    net.settle()
    assert len(pbx.call_slots) == 1   # registered via ChannelUp


def test_switch_to_unknown_call_rejected(rig):
    net, pbx, a, b, c, line = rig
    with pytest.raises(ConfigurationError):
        pbx.switch_to("nope")


def test_switch_without_line_rejected():
    net = Network(seed=63)
    pbx = net.box("pbx", cls=PBX)
    b = net.device("B")
    ch = net.channel(b, pbx)
    pbx.add_call(ch, key="B")
    with pytest.raises(ConfigurationError):
        pbx.switch_to("B")


def test_cli_entrypoint_scenario():
    from repro.__main__ import main
    assert main(["scenario"]) == 0
