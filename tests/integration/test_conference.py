"""Experiment E4: the conference of Fig. 7 with all muting modes."""

import pytest

from repro import AUDIO, Network
from repro.apps.conference import build_conference
from repro.semantics import PathMonitor


@pytest.fixture
def conf():
    net = Network(seed=71)
    server = build_conference(net)
    devices = {}
    for name in ("A", "B", "C"):
        dev = net.device(name, auto_accept=True)
        devices[name] = dev
        server.invite(name, key=name)
    net.settle()
    return net, server, devices


def test_three_way_conference_mixes_everyone(conf):
    net, server, devices = conf
    for name, dev in devices.items():
        heard = net.plane.heard_by(dev)
        others = {"audio:%s" % o for o in devices if o != name}
        assert others <= heard
        assert ("audio:%s" % name) not in heard  # no echo


def test_dial_in_guests_are_admitted():
    net = Network(seed=72)
    server = build_conference(net)
    a = net.device("A", auto_accept=True)
    server.invite("A", key="A")
    net.settle()
    guest = net.device("guest")
    ch = net.dial(guest, "conf:main")
    guest.open(ch.end_for(guest).slot(), AUDIO)
    net.settle()
    assert "audio:guest" in net.plane.heard_by(a)
    assert "audio:A" in net.plane.heard_by(guest)


def test_full_muting_replaces_flowlink_with_holdslots(conf):
    net, server, devices = conf
    server.fully_mute("B")
    net.settle()
    assert net.plane.silent(devices["B"])
    assert "audio:B" not in net.plane.heard_by(devices["A"])
    assert "audio:A" in net.plane.heard_by(devices["C"])
    server.unmute("B")
    net.settle()
    assert "audio:B" in net.plane.heard_by(devices["A"])
    assert "audio:A" in net.plane.heard_by(devices["B"])


def test_business_muting(conf):
    net, server, devices = conf
    server.business_mute("C")
    net.settle()
    assert "audio:C" not in net.plane.heard_by(devices["A"])
    assert "audio:C" not in net.plane.heard_by(devices["B"])
    # C still hears the meeting.
    assert "audio:A" in net.plane.heard_by(devices["C"])
    server.business_mute("C", muted=False)
    net.settle()
    assert "audio:C" in net.plane.heard_by(devices["A"])


def test_emergency_muting(conf):
    # B called emergency services; the calltaker and responder confer
    # without B hearing them.
    net, server, devices = conf
    server.emergency_isolate("B")
    net.settle()
    assert net.plane.heard_by(devices["B"]) == frozenset()
    assert "audio:B" in net.plane.heard_by(devices["A"])
    assert "audio:B" in net.plane.heard_by(devices["C"])


def test_training_whisper_mode(conf):
    # A = agent, B = customer, C = supervisor.
    net, server, devices = conf
    server.training_mode(agent="A", customer="B", supervisor="C")
    net.settle()
    heard_b = net.plane.heard_by(devices["B"])
    assert "audio:C" not in heard_b
    assert "whisper:audio:C" not in heard_b
    assert "audio:A" in heard_b
    heard_a = net.plane.heard_by(devices["A"])
    assert "whisper:audio:C" in heard_a
    assert "audio:B" in heard_a
    heard_c = net.plane.heard_by(devices["C"])
    assert "audio:A" in heard_c and "audio:B" in heard_c


def test_remove_user_tears_down_leg(conf):
    net, server, devices = conf
    server.remove("C")
    net.settle()
    assert net.plane.silent(devices["C"])
    assert "audio:C" not in net.plane.heard_by(devices["A"])
    assert "audio:A" in net.plane.heard_by(devices["B"])


def test_conference_paths_conform(conf):
    net, server, devices = conf
    PathMonitor(net).assert_all_conform()
