"""Experiments E1/E2: the erroneous (Fig. 2) versus correct (Fig. 3)
prepaid-card scenario, snapshot by snapshot.

These tests reproduce the paper's motivating example.  The media-plane
assertions after each snapshot are exactly the media arrows drawn in
the two figures; the Fig. 2 run must exhibit the anomalies the paper
describes, and the Fig. 3 run must not.
"""

import pytest

from repro import Network
from repro.apps.prepaid import ErroneousPrepaidScenario, PrepaidScenario
from repro.semantics import PathMonitor


# ----------------------------------------------------------------------
# Fig. 3: correct compositional control
# ----------------------------------------------------------------------
@pytest.fixture
def fig3():
    net = Network(seed=31)
    scenario = PrepaidScenario(net, talk_seconds=30.0, verify_delay=2.0)
    scenario.establish_ab_call()
    return net, scenario


def test_fig3_prehistory_a_talks_to_b(fig3):
    net, s = fig3
    assert net.plane.two_way(s.a, s.b)


def test_fig3_snapshot1_a_talks_to_c(fig3):
    net, s = fig3
    s.card_call_starts()
    assert net.plane.two_way(s.a, s.c)
    assert net.plane.silent(s.b)        # B is on hold
    assert net.plane.silent(s.v)
    assert net.plane.wasted_transmissions() == []


def test_fig3_snapshot2_c_talks_to_v(fig3):
    net, s = fig3
    s.card_call_starts()
    s.run_until_funds_exhausted()
    assert net.plane.two_way(s.c, s.v)  # V collects payment from C
    assert net.plane.silent(s.a)
    assert net.plane.silent(s.b)
    assert net.plane.wasted_transmissions() == []


def test_fig3_snapshot3_v_keeps_input_from_c(fig3):
    # The crucial contrast with Fig. 2: when A switches back to B, the
    # PBX's signals do NOT disturb the C--V channel.
    net, s = fig3
    s.card_call_starts()
    s.run_until_funds_exhausted()
    s.switch_back_to_b()
    assert net.plane.two_way(s.a, s.b)
    assert net.plane.two_way(s.c, s.v)          # still two-way!
    assert net.plane.flow_exists(s.c, s.v)      # V has input from C
    assert net.plane.wasted_transmissions() == []


def test_fig3_snapshot4_proximity_confers_priority(fig3):
    # After payment, PC relinks C toward A, but the PBX (closer to A)
    # still mandates A--B: A must NOT be switched without its consent.
    net, s = fig3
    s.card_call_starts()
    s.run_until_funds_exhausted()
    s.switch_back_to_b()
    s.run_until_paid()
    assert net.plane.two_way(s.a, s.b)           # A stays with B
    assert not net.plane.flow_exists(s.a, s.c)
    assert not net.plane.flow_exists(s.c, s.a)
    assert net.plane.silent(s.v)
    assert net.plane.wasted_transmissions() == []
    # Only when A's own server switches does A reach C.
    s.switch_to_card_call()
    assert net.plane.two_way(s.a, s.c)
    assert net.plane.silent(s.b)
    assert net.plane.wasted_transmissions() == []


def test_fig3_no_path_spec_violations_at_any_snapshot(fig3):
    net, s = fig3
    monitor = PathMonitor(net)
    s.card_call_starts()
    monitor.assert_all_conform()
    s.run_until_funds_exhausted()
    monitor.assert_all_conform()
    s.switch_back_to_b()
    monitor.assert_all_conform()
    s.run_until_paid()
    monitor.assert_all_conform()
    s.switch_to_card_call()
    monitor.assert_all_conform()


# ----------------------------------------------------------------------
# Fig. 2: what goes wrong without coordination
# ----------------------------------------------------------------------
@pytest.fixture
def fig2():
    net = Network(seed=32)
    scenario = ErroneousPrepaidScenario(net, verify_delay=2.0)
    scenario.establish_ab_call()
    return net, scenario


def test_fig2_snapshot1_a_talks_to_c(fig2):
    net, s = fig2
    s.snapshot1()
    assert net.plane.two_way(s.a, s.c)
    assert net.plane.silent(s.b)


def test_fig2_snapshot2_c_talks_to_v(fig2):
    net, s = fig2
    s.snapshot1()
    s.snapshot2()
    assert net.plane.two_way(s.c, s.v)
    assert not net.plane.flow_exists(s.a, s.c)


def test_fig2_snapshot3_anomaly_v_loses_input(fig2):
    # "they have the abnormal effect of leaving V without audio input
    # from C.  Note that the media arrow between C and V is now
    # one-way."
    net, s = fig2
    s.snapshot1()
    s.snapshot2()
    s.snapshot3()
    assert net.plane.two_way(s.a, s.b)
    assert net.plane.flow_exists(s.v, s.c)        # V still prompts C
    assert not net.plane.flow_exists(s.c, s.v)    # ...but hears nothing


def test_fig2_snapshot4_anomalies(fig2):
    # "the signal switches A from B to C without A's permission.
    # Furthermore, B is left transmitting to an endpoint that will
    # throw away the packets."
    net, s = fig2
    s.snapshot1()
    s.snapshot2()
    s.snapshot3()
    s.snapshot4()
    # A was hijacked: it now exchanges media with C although its own
    # server still believes the active call is B.
    assert net.plane.two_way(s.a, s.c)
    assert s.pbx.active == "B"
    # B transmits toward A but A no longer answers: one-way leftover.
    assert net.plane.flow_exists(s.b, s.a)
    assert not net.plane.flow_exists(s.a, s.b)
    # A's user hears a mush of B and C simultaneously — impossible in
    # the correct run.
    heard_a = net.plane.heard_by(s.a)
    assert "audio:B" in heard_a and "audio:C" in heard_a
