"""Extension (Sec. X-F): mobility via re-description on the signaling
path, with media always direct."""

import pytest

from repro import AUDIO, Network
from repro.semantics import both_flowing, trace_path


@pytest.fixture
def call():
    net = Network(seed=10)
    mobile = net.device("mobile")
    desk = net.device("desk", auto_accept=True)
    locator = net.box("locator")
    ch_m = net.channel(mobile, locator)
    ch_d = net.channel(locator, desk)
    locator.flow_link(ch_m.end_for(locator).slot(),
                      ch_d.end_for(locator).slot())
    m_slot = ch_m.end_for(mobile).slot()
    mobile.open(m_slot, AUDIO)
    net.settle()
    return net, mobile, desk, locator, ch_m, m_slot


def test_handover_reconverges(call):
    net, mobile, desk, locator, ch_m, m_slot = call
    old_address = mobile.port(m_slot).address
    mobile.move(m_slot)
    assert mobile.port(m_slot).address != old_address
    net.settle()
    assert net.plane.two_way(mobile, desk)
    assert net.plane.wasted_transmissions() == []
    assert both_flowing(trace_path(ch_m.end_for(locator).slot()))


def test_peer_targets_new_address_directly(call):
    net, mobile, desk, locator, ch_m, m_slot = call
    mobile.move(m_slot)
    net.settle()
    desk_tx = [t for t in net.plane.transmissions()
               if t.port.endpoint is desk]
    assert desk_tx[0].target == mobile.port(m_slot).address


def test_transient_clipping_window_exists():
    """With real network latency, the handover has a brief window in
    which the peer still transmits to the old address — footnote 5's
    clipping trade-off made observable."""
    from repro import FixedLatency
    net = Network(seed=10, latency=FixedLatency(0.02))
    mobile = net.device("mobile")
    desk = net.device("desk", auto_accept=True)
    locator = net.box("locator")
    ch_m = net.channel(mobile, locator)
    ch_d = net.channel(locator, desk)
    locator.flow_link(ch_m.end_for(locator).slot(),
                      ch_d.end_for(locator).slot())
    m_slot = ch_m.end_for(mobile).slot()
    mobile.open(m_slot, AUDIO)
    net.settle()
    mobile.move(m_slot)
    assert net.plane.wasted_transmissions()    # clipping right now
    net.settle()
    assert net.plane.wasted_transmissions() == []


def test_repeated_handovers(call):
    net, mobile, desk, locator, ch_m, m_slot = call
    for _ in range(5):
        mobile.move(m_slot)
        net.settle()
    assert net.plane.two_way(mobile, desk)
    assert both_flowing(trace_path(ch_m.end_for(locator).slot()))


def test_both_ends_move_concurrently(call):
    net, mobile, desk, locator, ch_m, m_slot = call
    d_slot = desk.ports()[0].slot
    mobile.move(m_slot)
    desk.move(d_slot)
    net.settle()
    assert net.plane.two_way(mobile, desk)
    assert net.plane.wasted_transmissions() == []
