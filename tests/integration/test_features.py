"""Feature-box composition tests: independent features in one signaling
pipeline, coordinated only by the protocol (the DFC motivation of
Secs. I/II-B)."""

import pytest

from repro import AUDIO, Network
from repro.apps.features import (CallForwarding, DoNotDisturb,
                                 TransparentFeature, VoicemailFeature)
from repro.media.resources import AnnouncementPlayer
from repro.semantics import PathMonitor, both_flowing, trace_path


def pipeline(net, caller, *feature_boxes, callee):
    """Wire caller -- f1 -- f2 -- ... -- callee and splice features."""
    agents = [caller] + list(feature_boxes) + [callee]
    channels = [net.channel(agents[i], agents[i + 1])
                for i in range(len(agents) - 1)]
    for i, box in enumerate(feature_boxes):
        box.splice(channels[i], channels[i + 1])
    return channels


def test_transparent_feature_is_invisible():
    net = Network(seed=91)
    a = net.device("A")
    b = net.device("B", auto_accept=True)
    feature = net.box("noop", cls=TransparentFeature)
    channels = pipeline(net, a, feature, callee=b)
    a.open(channels[0].end_for(a).slot(), AUDIO)
    net.settle()
    assert net.plane.two_way(a, b)
    assert both_flowing(trace_path(channels[0].end_for(feature).slot()))


def test_two_stacked_transparent_features():
    # Piecewise principle: no observable difference however many
    # transparent modules sit on the path.
    net = Network(seed=92)
    a = net.device("A")
    b = net.device("B", auto_accept=True)
    f1 = net.box("f1", cls=TransparentFeature)
    f2 = net.box("f2", cls=TransparentFeature)
    channels = pipeline(net, a, f1, f2, callee=b)
    a.open(channels[0].end_for(a).slot(), AUDIO)
    net.settle()
    assert net.plane.two_way(a, b)
    path = trace_path(channels[0].end_for(f1).slot())
    assert path.hops == 3 and len(path.flowlinks) == 2


def test_do_not_disturb_rejects_then_releases():
    net = Network(seed=93)
    a = net.device("A")
    b = net.device("B", auto_accept=True)
    dnd = net.box("dnd", cls=DoNotDisturb)
    channels = pipeline(net, a, dnd, callee=b)
    dnd.engage()
    a_slot = channels[0].end_for(a).slot()
    a.open(a_slot, AUDIO)
    net.settle()
    assert a_slot.is_closed          # rejected by the closeslot
    assert net.plane.silent(b)
    dnd.disengage()
    a.open(a_slot, AUDIO)
    net.settle()
    assert net.plane.two_way(a, b)


def test_dnd_mid_call_cuts_media():
    net = Network(seed=94)
    a = net.device("A")
    b = net.device("B", auto_accept=True)
    dnd = net.box("dnd", cls=DoNotDisturb)
    channels = pipeline(net, a, dnd, callee=b)
    a_slot = channels[0].end_for(a).slot()
    a.open(a_slot, AUDIO)
    net.settle()
    assert net.plane.two_way(a, b)
    dnd.engage()                      # hangs up on the caller
    net.settle()
    assert a_slot.is_closed
    assert net.plane.silent(a) and net.plane.silent(b)
    assert net.plane.wasted_transmissions() == []


def test_call_forwarding_diverts_to_other_device():
    net = Network(seed=95)
    a = net.device("A")
    b = net.device("B", auto_accept=True)
    c = net.device("C", auto_accept=True)
    cf = net.box("cf", cls=CallForwarding)
    cf.configure(net, forward_to="C")
    channels = pipeline(net, a, cf, callee=b)
    cf.engage()
    a.open(channels[0].end_for(a).slot(), AUDIO)
    net.settle()
    assert net.plane.two_way(a, c)
    assert net.plane.silent(b)
    # Disengaging mid-call swings the caller back to B.
    cf.disengage()
    net.settle()
    assert net.plane.two_way(a, b)
    assert net.plane.silent(c)


def test_voicemail_takes_unanswered_call():
    net = Network(seed=96)
    a = net.device("A")
    b = net.device("B")                      # never answers
    vm = net.box("vm", cls=VoicemailFeature, answer_timeout=3.0)
    net.resource("greeting", AnnouncementPlayer, address="vm-greeting",
                 announcement="leave-a-message", duration=2.0)
    vm.configure(net, greeting_address="vm-greeting")
    channels = pipeline(net, a, vm, callee=b)
    a_slot = channels[0].end_for(a).slot()
    a.open(a_slot, AUDIO)
    net.run(4.0)
    assert vm.took_message
    assert "announcement:leave-a-message" in net.plane.heard_by(a)
    net.settle()
    # The announcement finished and the feature released the caller.
    assert a_slot.is_closed


def test_voicemail_stays_out_of_the_way_when_answered():
    net = Network(seed=97)
    a = net.device("A")
    b = net.device("B")
    vm = net.box("vm", cls=VoicemailFeature, answer_timeout=3.0)
    net.resource("greeting", AnnouncementPlayer, address="vm-greeting")
    vm.configure(net, greeting_address="vm-greeting")
    channels = pipeline(net, a, vm, callee=b)
    a.open(channels[0].end_for(a).slot(), AUDIO)
    net.run(1.0)
    b.answer()
    net.run(5.0)
    assert not vm.took_message
    assert net.plane.two_way(a, b)


def test_features_compose_forwarding_into_voicemail():
    """A -> CF(B→C) where C has voicemail and never answers: two
    independent features, two administrative domains, one coherent
    outcome — the compositionality claim end-to-end."""
    net = Network(seed=98)
    a = net.device("A")
    b = net.device("B")
    c = net.device("C")                      # never answers
    cf = net.box("cf", cls=CallForwarding)
    vm = net.box("vm", cls=VoicemailFeature, answer_timeout=2.0)
    net.resource("greeting", AnnouncementPlayer, address="vm-greeting",
                 announcement="c-mailbox", duration=1.5)
    vm.configure(net, greeting_address="vm-greeting")
    # C sits behind its voicemail feature; register the feature as C's
    # serving agent so forwarded calls route through it.
    ch_vm_c = net.channel(vm, c)
    net.router.register("C", vm)
    cf.configure(net, forward_to="C")
    channels = pipeline(net, a, cf, callee=b)
    cf.engage()

    a_slot = channels[0].end_for(a).slot()
    a.open(a_slot, AUDIO)
    net.run(0.1)
    # CF dialed vm; vm must splice the incoming channel toward C.
    incoming = cf.diverted
    vm.splice(incoming, ch_vm_c)
    net.run(3.0)
    assert vm.took_message
    assert "announcement:c-mailbox" in net.plane.heard_by(a)
