"""Experiment E3: the Click-to-Dial program of Fig. 6."""

import pytest

from repro import AUDIO, Network
from repro.apps.click_to_dial import build_click_to_dial
from repro.semantics import PathMonitor, both_flowing, trace_path


@pytest.fixture
def rig():
    net = Network(seed=61)
    user1 = net.device("user1")
    user2 = net.device("user2")
    ctd = build_click_to_dial(net, caller_address="user1")
    return net, user1, user2, ctd


def test_happy_path_connects_both_users(rig):
    net, user1, user2, ctd = rig
    program = ctd.click("user2")
    net.run(0.1)
    assert program.state_name == "oneCall"
    assert user1.ringing()
    user1.answer()
    net.run(0.1)
    # user2's device reported availability; ringback plays to user 1.
    assert program.state_name == "ringback"
    assert "tone:ringback" in net.plane.heard_by(user1)
    assert user2.ringing()
    user2.answer()
    net.run(0.1)
    assert program.state_name == "connected"
    assert net.plane.two_way(user1, user2)
    assert "tone:ringback" not in net.plane.heard_by(user1)
    path = trace_path(ctd.slot("1a"))
    assert both_flowing(path)


def test_busy_callee_gets_busy_tone(rig):
    net, user1, user2, ctd = rig
    user2.availability = "busy"
    program = ctd.click("user2")
    net.run(0.1)
    user1.answer()
    net.run(0.1)
    assert program.state_name == "busyTone"
    assert "tone:busy" in net.plane.heard_by(user1)
    assert ctd.channel2 is None  # channel 2 was destroyed
    # User 1 gives up: their device closes... the whole channel dies
    # with it, and the program terminates.
    user1.hang_up_all()
    user1.channel_ends[0].tear_down()
    net.run(0.1)
    assert program.finished


def test_caller_never_answers_times_out(rig):
    net, user1, user2, ctd = rig
    ctd.answer_timeout = 5.0
    program = ctd.click("user2")
    net.run(6.0)
    assert program.finished
    assert ctd.channel1 is None or not ctd.channel1.active
    assert net.plane.silent(user1)


def test_caller_abandons_during_ringback(rig):
    net, user1, user2, ctd = rig
    program = ctd.click("user2")
    net.run(0.1)
    user1.answer()
    net.run(0.1)
    assert program.state_name == "ringback"
    # User 1 gives up; destroying channel 1 must destroy everything.
    user1.channel_ends[0].tear_down()
    net.run(0.1)
    assert program.finished
    assert ctd.channelT is None or not ctd.channelT.active
    assert net.plane.silent(user2)


def test_openslot_goal_object_reused_across_states(rig):
    # "Because the annotation controlling slot 2a is the same in both
    # states twoCalls and ringback, the openLink object controlling 2a
    # is also the same."
    net, user1, user2, ctd = rig
    program = ctd.click("user2")
    net.run(0.05)
    user1.answer()
    net.run(0.001)  # reach twoCalls; availability not yet consumed
    goal_in_two_calls = ctd.maps.goal_for(ctd.slot("2a"))
    net.run(0.1)
    assert program.state_name == "ringback"
    assert ctd.maps.goal_for(ctd.slot("2a")) is goal_in_two_calls


def test_no_spec_violations_when_connected(rig):
    net, user1, user2, ctd = rig
    ctd.click("user2")
    net.run(0.1)
    user1.answer()
    net.run(0.1)
    user2.answer()
    net.run(0.1)
    PathMonitor(net).assert_all_conform()
