"""End-to-end tests of the observability subsystem: deterministic
trace exports across every bundled app, span counts against the apps'
media-channel counts, and flight-recorder tails on failure payloads."""

import pytest

from repro import AUDIO, FaultPlan, Network, QuiescenceError, RetransmitPolicy
from repro.chaos.scenarios import SCENARIOS
from repro.network.faults import PLANS
from repro.obs.export import dumps_chrome

APPS = sorted(SCENARIOS)


def _trace_app(app, seed=7, plan=None):
    retransmit = RetransmitPolicy() if plan is not None else None
    net = Network(seed=seed, retransmit=retransmit, faults=plan,
                  trace=True)
    SCENARIOS[app](net)
    return net


# ----------------------------------------------------------------------
# determinism: one seed, one byte stream
# ----------------------------------------------------------------------
@pytest.mark.parametrize("app", APPS)
def test_same_seed_traces_are_byte_identical(app):
    first = dumps_chrome(_trace_app(app).trace, meta={"app": app})
    second = dumps_chrome(_trace_app(app).trace, meta={"app": app})
    assert first == second


@pytest.mark.parametrize("app", APPS)
def test_same_seed_faulted_traces_are_byte_identical(app):
    plan = PLANS["drop10+dup10"]
    first = dumps_chrome(_trace_app(app, plan=plan).trace)
    second = dumps_chrome(_trace_app(app, plan=plan).trace)
    assert first == second


def test_different_seeds_give_different_faulted_traces():
    # The negative control for the determinism tests: under a fault
    # plan the seed genuinely steers the trace.
    plan = PLANS["drop10+dup10"]
    a = dumps_chrome(_trace_app("click_to_dial", seed=7, plan=plan).trace)
    b = dumps_chrome(_trace_app("click_to_dial", seed=8, plan=plan).trace)
    assert a != b


# ----------------------------------------------------------------------
# spans against ground truth
# ----------------------------------------------------------------------
def test_click_to_dial_span_count_matches_channel_count():
    net = _trace_app("click_to_dial")
    assert len(net.trace.spans.spans) == len(net.channels) == 3
    span_channels = {s.channel for s in net.trace.spans.spans}
    assert span_channels == {ch.name for ch in net.channels}


@pytest.mark.parametrize("app", APPS)
def test_every_app_produces_spans_and_metrics(app):
    net = _trace_app(app)
    tracer = net.trace
    assert tracer.emitted > 0
    assert len(tracer.spans.spans) > 0
    counters = tracer.metrics.snapshot()["counters"]
    assert counters["channels.up"] == len(net.channels)
    assert counters["signals.sent"] > 0


def test_tracing_does_not_perturb_the_simulation():
    # Same seed, traced vs untraced: identical fingerprints and event
    # counts — the tracer never draws from the simulation RNG.
    plain = Network(seed=7)
    fp_plain = SCENARIOS["click_to_dial"](plain)
    traced = Network(seed=7, trace=True)
    fp_traced = SCENARIOS["click_to_dial"](traced)
    assert fp_plain == fp_traced
    assert plain.loop.executed == traced.loop.executed
    assert plain.now == traced.now


# ----------------------------------------------------------------------
# flight-recorder tails on failure payloads
# ----------------------------------------------------------------------
def test_quiescence_error_carries_flight_tail():
    # An openSlot facing a closeSlot never stabilizes (its spec is only
    # eventually-not-bothFlowing), so a quiescence run must trip the
    # budget — and the error must carry the recorder's tail.
    net = Network(seed=1, trace=True)
    a = net.box("opener")
    b = net.box("closer")
    ch = net.channel(a, b)
    a.open_slot(ch.end_for(a).slot(), AUDIO)
    b.close_slot(ch.end_for(b).slot())
    with pytest.raises(QuiescenceError) as exc:
        net.settle(max_events=300)
    err = exc.value
    assert err.flight_tail, "traced loop must attach the recorder tail"
    assert any("signal." in line for line in err.flight_tail)
    assert "flight recorder tail" in str(err)


def test_quiescence_error_without_tracer_has_empty_tail():
    net = Network(seed=1)
    a = net.box("opener")
    b = net.box("closer")
    ch = net.channel(a, b)
    a.open_slot(ch.end_for(a).slot(), AUDIO)
    b.close_slot(ch.end_for(b).slot())
    with pytest.raises(QuiescenceError) as exc:
        net.settle(max_events=300)
    assert exc.value.flight_tail == ()
    assert "flight recorder" not in str(exc.value)


def test_box_failure_record_carries_flight_tail():
    policy = RetransmitPolicy(initial=0.1, backoff=2.0, max_retries=2,
                              stale_after=0.0)
    net = Network(seed=1, retransmit=policy, trace=True)
    box = net.box("srv")
    dev = net.device("d")
    ch = net.channel(box, dev)
    ch.link.down = True  # the peer is unreachable for good
    box.open_slot(ch.end_for(box).slot(), AUDIO)
    net.loop.run()
    assert len(box.failure_records) == 1
    record = box.failure_records[0]
    assert record.reason == "open"
    assert record.flight_tail, "failure record must carry the tail"
    assert any("slot.retransmit" in line for line in record.flight_tail)
    assert record.to_json()["flight_tail"] == list(record.flight_tail)
    # The legacy failed_log stays in step.
    assert len(box.failed_log) == 1


def test_failure_record_without_tracer_has_empty_tail():
    policy = RetransmitPolicy(initial=0.1, backoff=2.0, max_retries=2,
                              stale_after=0.0)
    net = Network(seed=1, retransmit=policy)
    box = net.box("srv")
    dev = net.device("d")
    ch = net.channel(box, dev)
    ch.link.down = True
    box.open_slot(ch.end_for(box).slot(), AUDIO)
    net.loop.run()
    assert len(box.failure_records) == 1
    assert box.failure_records[0].flight_tail == ()


def test_fault_injections_are_traced():
    plan = FaultPlan(name="all-drop", drop=1.0)
    policy = RetransmitPolicy(initial=0.1, backoff=2.0, max_retries=2,
                              stale_after=0.0)
    net = Network(seed=3, retransmit=policy, faults=plan, trace=True)
    a = net.device("a")
    b = net.device("b", auto_accept=True)
    ch = net.channel(a, b)
    a.open(ch.initiator_end.slot(), AUDIO)
    net.run(10.0)
    counters = net.trace.metrics.snapshot()["counters"]
    assert counters.get("faults.drop", 0) > 0
    assert counters.get("faults.drop") == net.fault_stats.dropped
