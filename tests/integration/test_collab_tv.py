"""Experiment E5: collaborative television (Fig. 8)."""

import pytest

from repro import Network
from repro.apps.collab_tv import CollaborativeTV
from repro.semantics import PathMonitor, all_paths


@pytest.fixture
def tv():
    net = Network(seed=81)
    session = CollaborativeTV(net, title="heidi")
    session.start_watching()
    return net, session


def test_all_devices_receive_the_movie(tv):
    net, s = tv
    heard_tv = net.plane.heard_by(s.tv)
    assert "movie:heidi:video-A" in heard_tv
    assert "movie:heidi:audio-A" in heard_tv
    heard_laptop = net.plane.heard_by(s.laptop)
    assert "movie:heidi:video-C" in heard_laptop
    assert "movie:heidi:audio-C" in heard_laptop
    assert "movie:heidi:audio-fr-B" in net.plane.heard_by(s.phones)


def test_devices_get_different_codecs(tv):
    # "There are video and English audio channels for the two video
    # devices, which differ because the two devices have different
    # media quality and use different codecs."
    net, s = tv
    video_tx = {}
    for t in net.plane.transmissions():
        if t.port.endpoint is s.movie and "video" in t.port.slot.tunnel_id:
            video_tx[t.port.slot.tunnel_id] = t.codec.name
    assert video_tx["video-A"] == "MPEG4-HD"
    assert video_tx["video-C"] == "H.263"


def test_single_shared_time_pointer(tv):
    net, s = tv
    assert len(s.movie.sessions()) == 1
    session = s.shared_session()
    net.run(10.0)
    assert session.position_at(net.now) == pytest.approx(10.0, abs=0.2)


def test_pause_affects_all_five_channels(tv):
    net, s = tv
    s.box_a.pause()
    net.run(1.0)
    pos = s.shared_session().position_at(net.now)
    net.run(30.0)
    assert s.shared_session().position_at(net.now) == pos
    s.box_a.play()
    net.run(2.0)
    assert s.shared_session().position_at(net.now) == \
        pytest.approx(pos + 2.0, abs=0.2)


def test_laptop_path_has_two_flowlinks(tv):
    net, s = tv
    laptop_slot = s.laptop_ch.end_for(s.laptop).slot("video")
    from repro.semantics import trace_path
    path = trace_path(laptop_slot)
    assert len(path.flowlinks) == 2       # C's box and A's box
    assert path.hops == 3


def test_leave_and_fast_forward(tv):
    net, s = tv
    net.run(5.0)
    s.leave_and_fast_forward(position=6000.0)
    # Two sessions now exist with independent time pointers.
    sessions = s.movie.sessions()
    assert len(sessions) == 2
    positions = sorted(x.position_at(net.now) for x in sessions)
    assert positions[0] < 100.0          # the family-room session
    assert positions[1] >= 6000.0        # the daughter's session
    # The laptop still receives the movie, now via its own channel.
    heard_laptop = net.plane.heard_by(s.laptop)
    assert "movie:heidi:video-C" in heard_laptop
    # And the chain channel is gone.
    assert not s.chain_ch.active
    # TV and headphones are undisturbed.
    assert "movie:heidi:video-A" in net.plane.heard_by(s.tv)
    assert "movie:heidi:audio-fr-B" in net.plane.heard_by(s.phones)


def test_collab_paths_conform(tv):
    net, s = tv
    PathMonitor(net).assert_all_conform()
