"""Model-based conformance testing: the verification models versus the
implementation.

The Sec. VIII verification only means something if the Promela-style
models faithfully abstract the Java-style implementation.  This test
closes that loop mechanically: hypothesis generates protocol-legal
signal sequences; each sequence is fed both to the *model* endpoint
process (``repro.verification.processes``) and to the *real* goal
object driving a real slot over a real channel; after every step the
slot states must agree and the emitted signal kinds must match.
"""

from hypothesis import given, settings, strategies as st

from repro import Network
from repro.network.address import Address
from repro.protocol.codecs import AUDIO, G711, NO_MEDIA
from repro.protocol.descriptor import (Descriptor, DescriptorFactory,
                                       DescriptorId, Selector)
from repro.protocol.signals import (Close, CloseAck, Describe, Oack, Open,
                                    Select, TunnelMessage)
from repro.verification.processes import EndpointProcess

#: What the peer may legally inject, by the endpoint's slot state.
LEGAL = {
    "closed": ("open",),
    "opening": ("open", "oack", "close"),
    "opened": ("close",),
    "flowing": ("describe", "select", "close"),
    "closing": ("close", "closeack", "oack", "describe", "select",
                "open"),
}


class ScriptedPeer:
    """Injects raw signals into the box's channel and records what the
    box emits, by spying on the link."""

    def __init__(self, net, box):
        self.net = net
        self.box = box
        peer = net.box("peer")           # never processes: raw injector
        peer.on_tunnel_signal = lambda slot, signal: None
        # Lenient: the injector does not maintain its own slot FSM, so
        # the box's (perfectly legal) replies would otherwise trip the
        # peer-side receive validation.
        self.channel = net.channel(peer, box, strict=False)
        self.peer_end = self.channel.end_for(peer)
        self.slot = self.channel.end_for(box).slot()
        self.emitted = []
        self._descriptors = DescriptorFactory("P")
        self._version = 0

        def spy(origin, message, forward):
            if origin is self.channel.link.ends[1]:  # from the box
                if isinstance(message, TunnelMessage):
                    self.emitted.append(message.signal.kind)
            forward(origin, message)

        # Spy through the link's sanctioned observation seam (the
        # transmit-hook chain) so it sees every send regardless of how
        # the fast path reaches the link.
        self.channel.link.add_transmit_hook(spy)

    def inject(self, kind):
        ver = ("P", self._version)
        if kind == "open":
            desc = Descriptor(DescriptorId(*ver), None, (NO_MEDIA,))
            signal = Open(AUDIO, desc)
            self._version += 1
        elif kind == "oack":
            desc = Descriptor(DescriptorId(*ver), None, (NO_MEDIA,))
            signal = Oack(desc)
            self._version += 1
        elif kind == "describe":
            desc = Descriptor(DescriptorId(*ver), None, (NO_MEDIA,))
            signal = Describe(desc)
            self._version += 1
        elif kind == "select":
            answers = self.slot.local_descriptor.id \
                if self.slot.local_descriptor is not None \
                else DescriptorId("P", 999)
            signal = Select(Selector(answers=answers, address=None,
                                     codec=NO_MEDIA))
        elif kind == "close":
            signal = Close()
        elif kind == "closeack":
            signal = CloseAck()
        else:  # pragma: no cover - LEGAL is exhaustive
            raise AssertionError(kind)
        self.peer_end.send_tunnel("t0", signal)
        self.net.settle(max_events=20_000)


def run_conformance(goal_kind, choices):
    # --- the model side -------------------------------------------------
    model = EndpointProcess("B", goal_kind, out_queue=0, initiator=False,
                            max_versions=64)
    m_state, m_sends = model._switch(model.initial()._replace(budget=0))
    model_emitted = [m[1][0] for m in m_sends]

    # --- the real side ---------------------------------------------------
    net = Network(seed=0)
    box = net.box("uut")
    peer = ScriptedPeer(net, box)
    if goal_kind == "open":
        box.open_slot(peer.slot, AUDIO, retry_interval=0.001)
    elif goal_kind == "close":
        box.close_slot(peer.slot)
    else:
        box.hold_slot(peer.slot)
    net.settle(max_events=20_000)

    assert peer.slot.state == m_state.slot
    assert peer.emitted == model_emitted

    # --- drive both with the same legal sequence -------------------------
    for choice in choices:
        legal = LEGAL[m_state.slot]
        kind = legal[choice % len(legal)]
        # model step (deterministic in phase 2: single outcome)
        ver = ("P", 10_000)  # payload version; kinds are what we compare
        msg = (kind,) if kind in ("close", "closeack") else (kind, ver)
        outcomes = model.receive(m_state, 0, msg)
        assert len(outcomes) == 1, (kind, m_state)
        m_state, sends = outcomes[0]
        model_emitted.extend(m[1][0] for m in sends)
        # real step
        peer.inject(kind)
        assert peer.slot.state == m_state.slot, \
            "diverged on %s: real=%s model=%s" % (kind, peer.slot.state,
                                                  m_state.slot)
        assert peer.emitted == model_emitted, \
            "emissions diverged on %s: real=%s model=%s" % (
                kind, peer.emitted, model_emitted)


@given(choices=st.lists(st.integers(min_value=0, max_value=5),
                        min_size=0, max_size=12))
@settings(max_examples=80, deadline=None)
def test_openslot_conforms_to_model(choices):
    run_conformance("open", choices)


@given(choices=st.lists(st.integers(min_value=0, max_value=5),
                        min_size=0, max_size=12))
@settings(max_examples=80, deadline=None)
def test_closeslot_conforms_to_model(choices):
    run_conformance("close", choices)


@given(choices=st.lists(st.integers(min_value=0, max_value=5),
                        min_size=0, max_size=12))
@settings(max_examples=80, deadline=None)
def test_holdslot_conforms_to_model(choices):
    run_conformance("hold", choices)
