"""Property-based tests on the substrates: event loop ordering, FIFO
links under jitter, the model checker's cycle query, and SDP
negotiation."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.network.address import Address
from repro.network.eventloop import EventLoop
from repro.network.latency import UniformLatency
from repro.network.transport import Link
from repro.protocol.codecs import codecs_for_medium, AUDIO
from repro.sip.sdp import SdpFactory, negotiate


# ----------------------------------------------------------------------
# event loop
# ----------------------------------------------------------------------
@given(delays=st.lists(st.floats(min_value=0, max_value=100),
                       min_size=1, max_size=40))
@settings(max_examples=100, deadline=None)
def test_events_fire_in_nondecreasing_time_order(delays):
    loop = EventLoop()
    fired = []
    for delay in delays:
        loop.schedule(delay, lambda: fired.append(loop.now))
    loop.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(delays=st.lists(st.floats(min_value=0, max_value=10),
                       min_size=2, max_size=20),
       cancel_every=st.integers(min_value=2, max_value=5))
@settings(max_examples=60, deadline=None)
def test_cancelled_events_never_fire(delays, cancel_every):
    loop = EventLoop()
    fired = []
    events = [loop.schedule(d, fired.append, i)
              for i, d in enumerate(delays)]
    cancelled = {i for i in range(len(events)) if i % cancel_every == 0}
    for i in cancelled:
        events[i].cancel()
    loop.run()
    assert set(fired) == set(range(len(delays))) - cancelled


# ----------------------------------------------------------------------
# FIFO links
# ----------------------------------------------------------------------
@given(seed=st.integers(min_value=0, max_value=2**31),
       count=st.integers(min_value=1, max_value=120),
       low=st.floats(min_value=0.0, max_value=0.1),
       spread=st.floats(min_value=0.0, max_value=0.5))
@settings(max_examples=60, deadline=None)
def test_link_is_fifo_for_any_jitter(seed, count, low, spread):
    loop = EventLoop(seed=seed)
    link = Link(loop, UniformLatency(low, low + spread))
    got = []
    link.ends[1].set_receiver(got.append)
    for i in range(count):
        link.ends[0].send(i)
    loop.run()
    assert got == list(range(count))


# ----------------------------------------------------------------------
# the cycle query versus brute force
# ----------------------------------------------------------------------
class TinyGraph:
    def __init__(self, n, edges):
        self.states = list(range(n))
        self.successors = [[] for _ in range(n)]
        for a, b in edges:
            if b not in self.successors[a]:
                self.successors[a].append(b)
        self.state_count = n


def brute_force_cycle_with(graph, within, witness):
    """Exponential reference: search for a cycle within `within`
    containing a witness, including terminal stutter."""
    n = graph.state_count
    inside = [within(s) for s in graph.states]
    # terminal stutter
    for v in range(n):
        if inside[v] and not graph.successors[v] and \
                witness(graph.states[v]):
            return True
    # path search for real cycles through each witness candidate
    for start in range(n):
        if not inside[start] or not witness(graph.states[start]):
            continue
        # BFS from start through `inside` back to start
        frontier = [w for w in graph.successors[start] if inside[w]]
        seen = set(frontier)
        while frontier:
            v = frontier.pop()
            if v == start:
                return True
            for w in graph.successors[v]:
                if inside[w] and w not in seen:
                    seen.add(w)
                    frontier.append(w)
    return False


@given(n=st.integers(min_value=1, max_value=7),
       edge_bits=st.integers(min_value=0, max_value=2**49 - 1),
       within_mask=st.integers(min_value=0, max_value=127),
       witness_mask=st.integers(min_value=0, max_value=127))
@settings(max_examples=200, deadline=None)
def test_cycle_query_matches_brute_force(n, edge_bits, within_mask,
                                         witness_mask):
    from repro.verification import find_cycle_with
    edges = [(a, b) for a, b in itertools.product(range(n), repeat=2)
             if (edge_bits >> (a * n + b)) & 1]
    graph = TinyGraph(n, edges)
    within = lambda s: bool((within_mask >> s) & 1)
    witness = lambda s: bool((witness_mask >> s) & 1)
    # Reachability nuance: find_cycle_with scans all states (our real
    # graphs contain only reachable states), so compare globally.
    fast = find_cycle_with(graph, within, witness) is not None
    slow = brute_force_cycle_with(graph, within, witness)
    assert fast == slow


# ----------------------------------------------------------------------
# SDP negotiation
# ----------------------------------------------------------------------
codec_lists = st.lists(st.sampled_from(codecs_for_medium(AUDIO)),
                       min_size=1, max_size=4, unique=True)


@given(offered=codec_lists, supported=codec_lists)
@settings(max_examples=100, deadline=None)
def test_negotiated_answer_is_subset_in_offer_order(offered, supported):
    factory = SdpFactory("x")
    offer = factory.offer(Address("h", 1), tuple(offered))
    common = negotiate(offer, tuple(supported))
    assert set(common) <= set(offered)
    assert set(common) <= set(supported)
    # offer-order preservation
    positions = [offered.index(c) for c in common]
    assert positions == sorted(positions)
