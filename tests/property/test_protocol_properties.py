"""Property-based tests: random user behaviour against the protocol
invariants of Secs. V and VI.

The generator drives a device–server–device deployment with arbitrary
interleavings of user actions (open, accept, reject, close, modify) and
server relinks; after quiescence the Sec. V obligations must hold and
the media plane must contain no leaked or wasted streams.
"""

from hypothesis import given, settings, strategies as st

from repro import AUDIO, Network
from repro.semantics import both_closed, both_flowing, trace_path

ACTIONS = st.lists(
    st.sampled_from([
        "a-open", "a-close", "a-mute-in", "a-mute-out", "a-unmute",
        "b-answer", "b-decline", "b-close",
        "relink", "hold-both", "tick",
    ]),
    min_size=1, max_size=14)


def build():
    net = Network(seed=0)
    a = net.device("A")
    b = net.device("B")
    box = net.box("srv")
    ch_a = net.channel(a, box)
    ch_b = net.channel(box, b)
    sa = ch_a.end_for(box).slot()
    sb = ch_b.end_for(box).slot()
    box.flow_link(sa, sb)
    return net, a, b, box, ch_a, ch_b, sa, sb


def apply_action(action, net, a, b, box, ch_a, ch_b, sa, sb):
    a_slot = ch_a.end_for(a).slot()
    b_slot = ch_b.end_for(b).slot()
    if action == "a-open" and a_slot.is_closed:
        a.open(a_slot, AUDIO)
    elif action == "a-close" and a_slot.is_live:
        a.close(a_slot)
    elif action == "a-mute-in":
        a.modify(a_slot, mute_in=True)
    elif action == "a-mute-out":
        a.modify(a_slot, mute_out=True)
    elif action == "a-unmute":
        a.modify(a_slot, mute_in=False, mute_out=False)
    elif action == "b-answer" and b.ringing():
        b.answer()
    elif action == "b-decline" and b.ringing():
        b.decline()
    elif action == "b-close" and b_slot.is_live:
        b.close(b_slot)
    elif action == "relink":
        box.flow_link(sa, sb)
    elif action == "hold-both":
        box.hold_slot(sa)
        box.hold_slot(sb)
    elif action == "tick":
        net.run(0.001)


@given(actions=ACTIONS)
@settings(max_examples=120, deadline=None)
def test_random_user_behaviour_respects_media_invariants(actions):
    net, a, b, box, ch_a, ch_b, sa, sb = build()
    relinked = True
    for action in actions:
        apply_action(action, net, a, b, box, ch_a, ch_b, sa, sb)
        if action == "hold-both":
            relinked = False
        if action == "relink":
            relinked = True
    # The path must persist under one final flowlink to have a spec.
    if not relinked:
        box.flow_link(sa, sb)
    net.settle(max_events=50_000)
    # Resolve any pending human decision (an unanswered ring is a
    # legitimately unstable path: its endpoint goal is still the user).
    # A re-link after ``a-close`` can leave *either* device ringing, so
    # both must be resolved before the stability invariants can hold.
    if b.ringing():
        b.answer()
    if a.ringing():
        a.answer()
    net.settle(max_events=50_000)

    # Invariant 1: nobody transmits into the void after quiescence.
    assert net.plane.wasted_transmissions() == []

    # Invariant 2: the slot pair at the server is state-matched (the
    # Fig. 12 goal substates): both flowing or both closed.
    assert (sa.is_flowing and sb.is_flowing) or \
        (sa.is_closed and sb.is_closed), (sa.state, sb.state)

    # Invariant 3: media flows in a direction iff the protocol's
    # enabled condition holds for it.
    a_slot = ch_a.end_for(a).slot()
    b_slot = ch_b.end_for(b).slot()
    path = trace_path(sa)
    if both_flowing(path):
        a_port = a.port(a_slot)
        b_port = b.port(b_slot)
        expect_ab = (not a_port.mute_out) and (not b_port.mute_in)
        expect_ba = (not b_port.mute_out) and (not a_port.mute_in)
        assert net.plane.flow_exists(a, b) == expect_ab
        assert net.plane.flow_exists(b, a) == expect_ba
    else:
        assert both_closed(path)
        assert net.plane.silent(a) and net.plane.silent(b)


@given(actions=ACTIONS)
@settings(max_examples=80, deadline=None)
def test_random_behaviour_never_corrupts_descriptor_matching(actions):
    """After quiescence on a flowing path, every end's most recent
    selector answers the other end's most recent descriptor."""
    net, a, b, box, ch_a, ch_b, sa, sb = build()
    for action in actions:
        apply_action(action, net, a, b, box, ch_a, ch_b, sa, sb)
    box.flow_link(sa, sb) if box.maps.goal_for(sa) is None else None
    net.settle(max_events=50_000)
    path = trace_path(sa)
    left, right = path.left, path.right
    if left.is_flowing and right.is_flowing:
        assert left.remote_descriptor.id == right.local_descriptor.id
        assert right.remote_descriptor.id == left.local_descriptor.id


@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       low=st.floats(min_value=0.0001, max_value=0.05),
       spread=st.floats(min_value=0.0, max_value=0.1))
@settings(max_examples=40, deadline=None)
def test_call_setup_invariant_under_random_jitter(seed, low, spread):
    """Whatever FIFO-preserving latency distribution the network has,
    a simple relayed call always converges to bothFlowing."""
    from repro import UniformLatency
    net = Network(seed=seed, latency=UniformLatency(low, low + spread))
    a = net.device("A")
    b = net.device("B", auto_accept=True)
    box = net.box("srv")
    ch_a = net.channel(a, box)
    ch_b = net.channel(box, b)
    box.flow_link(ch_a.end_for(box).slot(), ch_b.end_for(box).slot())
    a.open(ch_a.end_for(a).slot(), AUDIO)
    net.settle(max_events=50_000)
    assert both_flowing(trace_path(ch_a.end_for(box).slot()))
    assert net.plane.two_way(a, b)
