"""Shared fixtures for the test suite."""

import pytest

from repro import Network


@pytest.fixture
def net():
    """A fresh zero-latency, zero-cost network (deterministic seed)."""
    return Network(seed=7)


@pytest.fixture
def loop(net):
    return net.loop


def settle(net, max_events=100_000):
    return net.settle(max_events=max_events)
